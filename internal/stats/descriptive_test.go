package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEq(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance of this classic set is 32/7.
	if got := Variance(xs); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Median(nil) != 0 ||
		Quantile(nil, 0.5) != 0 || MAD(nil) != 0 {
		t.Error("empty inputs should yield 0")
	}
	if ZeroFraction(nil) != 1 {
		t.Error("ZeroFraction(nil) should be 1")
	}
	lo, hi := MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Error("MinMax(nil) should be (0,0)")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	// Median must not modify its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median modified its input")
	}
}

func TestMedianInPlaceMatchesMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint8) bool {
		xs := make([]float64, int(n)%50+1)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		want := Median(xs)
		got := MedianInPlace(append([]float64(nil), xs...))
		return almostEq(got, want, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{1, 2}, 0.5); !almostEq(got, 1.5, 1e-12) {
		t.Errorf("interpolated quantile = %v", got)
	}
}

func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := Quantile(xs, q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestMAD(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 4, 6, 9}
	// median = 2; deviations = 1,1,0,0,2,4,7; median deviation = 1.
	if got := MAD(xs); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
	if got := MADSigma(1); !almostEq(got, 1.4826, 1e-9) {
		t.Errorf("MADSigma = %v", got)
	}
}

func TestMADRobustToOutliers(t *testing.T) {
	base := make([]float64, 100)
	for i := range base {
		base[i] = 5
	}
	clean := MAD(base)
	base[0] = 1e9 // one severe outlier
	if got := MAD(base); got != clean {
		t.Errorf("MAD moved from %v to %v after one outlier", clean, got)
	}
}

func TestZeroFraction(t *testing.T) {
	if got := ZeroFraction([]float64{0, 0, 1, 0}); got != 0.75 {
		t.Errorf("ZeroFraction = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v, %v)", lo, hi)
	}
}

func TestQuantileAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if got := Quantile(xs, 0); got != sorted[0] {
		t.Errorf("q0 = %v, want min %v", got, sorted[0])
	}
	if got := Quantile(xs, 1); got != sorted[len(sorted)-1] {
		t.Errorf("q1 = %v, want max %v", got, sorted[len(sorted)-1])
	}
}
