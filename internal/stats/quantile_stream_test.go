package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestStreamingQuantileUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for _, p := range []float64{0.25, 0.5, 0.9} {
		q := NewStreamingQuantile(p)
		for i := 0; i < 50000; i++ {
			q.Add(rng.Float64())
		}
		if got := q.Value(); math.Abs(got-p) > 0.02 {
			t.Errorf("p=%v: estimate %v", p, got)
		}
	}
}

func TestStreamingQuantileNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	q := NewStreamingQuantile(0.5)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 40
		q.Add(xs[i])
	}
	sort.Float64s(xs)
	exact := xs[len(xs)/2]
	if got := q.Value(); math.Abs(got-exact) > 0.15 {
		t.Errorf("median estimate %v vs exact %v", got, exact)
	}
}

func TestStreamingQuantileLognormalTail(t *testing.T) {
	// Skewed data is the intended workload (cascade delays).
	rng := rand.New(rand.NewSource(113))
	q := NewStreamingQuantile(0.9)
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = LogNormal(rng, 3, 0.5)
		q.Add(xs[i])
	}
	exact := Quantile(xs, 0.9)
	if got := q.Value(); math.Abs(got-exact) > 0.08*exact {
		t.Errorf("q90 estimate %v vs exact %v", got, exact)
	}
}

func TestStreamingQuantileSmallSamples(t *testing.T) {
	q := NewStreamingQuantile(0.5)
	if q.Value() != 0 {
		t.Error("empty estimator should return 0")
	}
	q.Add(7)
	if q.Value() != 7 {
		t.Errorf("single value estimate %v", q.Value())
	}
	q.Add(1)
	q.Add(3)
	// Exact median of {1,3,7} is 3.
	if got := q.Value(); got != 3 {
		t.Errorf("small-sample median %v, want 3", got)
	}
	if q.N() != 3 {
		t.Errorf("N = %d", q.N())
	}
}

func TestStreamingQuantileClampsP(t *testing.T) {
	lo := NewStreamingQuantile(-1)
	hi := NewStreamingQuantile(2)
	rng := rand.New(rand.NewSource(114))
	for i := 0; i < 1000; i++ {
		v := rng.Float64()
		lo.Add(v)
		hi.Add(v)
	}
	if lo.Value() >= hi.Value() {
		t.Errorf("clamped extremes inverted: %v vs %v", lo.Value(), hi.Value())
	}
}

func TestStreamingQuantileMonotoneHeights(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	q := NewStreamingQuantile(0.5)
	for i := 0; i < 10000; i++ {
		q.Add(rng.ExpFloat64())
		if i > 5 {
			for j := 1; j < 5; j++ {
				if q.heights[j] < q.heights[j-1]-1e-9 {
					t.Fatalf("marker heights not monotone at %d: %v", i, q.heights)
				}
			}
		}
	}
}

func TestStreamingQuantileStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, warm := range []int{0, 3, 5, 50, 500} {
		a := NewStreamingQuantile(0.9)
		for i := 0; i < warm; i++ {
			a.Add(rng.ExpFloat64() * 10)
		}
		b := RestoreStreamingQuantile(a.State())
		if a.Value() != b.Value() || a.N() != b.N() {
			t.Fatalf("warm %d: restored estimator differs immediately (%v/%d vs %v/%d)",
				warm, a.Value(), a.N(), b.Value(), b.N())
		}
		for i := 0; i < 200; i++ {
			x := rng.ExpFloat64() * 10
			a.Add(x)
			b.Add(x)
			if a.Value() != b.Value() {
				t.Fatalf("warm %d, obs %d: values diverge: %v vs %v", warm, i, a.Value(), b.Value())
			}
		}
	}
}
