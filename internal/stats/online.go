package stats

import (
	"encoding/json"
	"math"
)

// Online accumulates count, mean and variance of a stream using Welford's
// algorithm. The zero value is ready to use. It is the building block for
// per-signal behaviour models in the online phase, where storing the whole
// history would violate the analysis-time budget.
type Online struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations seen.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean (0 before any observation).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running unbiased sample variance.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation (0 before any observation).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 before any observation).
func (o *Online) Max() float64 { return o.max }

// Merge folds another accumulator into o (parallel reduction, Chan et al.).
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n := o.n + other.n
	d := other.mean - o.mean
	o.m2 += other.m2 + d*d*float64(o.n)*float64(other.n)/float64(n)
	o.mean += d * float64(other.n) / float64(n)
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	o.n = n
}

// onlineJSON is the serialised form of Online; the accumulator's fields
// stay unexported so the zero-value-ready contract survives, but a
// monitor snapshot must round-trip the analysis-time accumulator.
type onlineJSON struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON encodes the accumulator's full state.
func (o Online) MarshalJSON() ([]byte, error) {
	return json.Marshal(onlineJSON{N: o.n, Mean: o.mean, M2: o.m2, Min: o.min, Max: o.max})
}

// UnmarshalJSON restores an accumulator serialised by MarshalJSON.
func (o *Online) UnmarshalJSON(data []byte) error {
	var s onlineJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	*o = Online{n: s.N, mean: s.Mean, m2: s.M2, min: s.Min, max: s.Max}
	return nil
}
