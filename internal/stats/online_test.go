package stats

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		o.Add(xs[i])
	}
	if o.N() != 1000 {
		t.Fatalf("N = %d", o.N())
	}
	if !almostEq(o.Mean(), Mean(xs), 1e-9) {
		t.Errorf("online mean %v vs batch %v", o.Mean(), Mean(xs))
	}
	if !almostEq(o.Variance(), Variance(xs), 1e-9) {
		t.Errorf("online var %v vs batch %v", o.Variance(), Variance(xs))
	}
	lo, hi := MinMax(xs)
	if o.Min() != lo || o.Max() != hi {
		t.Errorf("online min/max (%v,%v) vs batch (%v,%v)", o.Min(), o.Max(), lo, hi)
	}
}

func TestOnlineZeroValue(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.N() != 0 {
		t.Error("zero-value Online should report zeros")
	}
	o.Add(5)
	if o.Variance() != 0 {
		t.Error("single observation variance should be 0")
	}
	if o.Min() != 5 || o.Max() != 5 {
		t.Error("single observation min/max should be the observation")
	}
}

func TestOnlineMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(na, nb uint8) bool {
		a := make([]float64, int(na)%100+1)
		b := make([]float64, int(nb)%100+1)
		var oa, ob, whole Online
		for i := range a {
			a[i] = rng.ExpFloat64()
			oa.Add(a[i])
			whole.Add(a[i])
		}
		for i := range b {
			b[i] = rng.ExpFloat64() * 5
			ob.Add(b[i])
			whole.Add(b[i])
		}
		oa.Merge(ob)
		return oa.N() == whole.N() &&
			almostEq(oa.Mean(), whole.Mean(), 1e-9) &&
			almostEq(oa.Variance(), whole.Variance(), 1e-6) &&
			oa.Min() == whole.Min() && oa.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestOnlineMergeEmpty(t *testing.T) {
	var a, b Online
	a.Add(1)
	a.Add(3)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Error("merging empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Error("merge into empty did not copy")
	}
}

func TestOnlineJSONRoundTrip(t *testing.T) {
	var o Online
	for _, x := range []float64{3, 1, 4, 1.5, 9, 2.6} {
		o.Add(x)
	}
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var back Online
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != o {
		t.Fatalf("round trip changed state: %+v vs %+v", back, o)
	}
	// The restored accumulator must keep accumulating identically.
	o.Add(7)
	back.Add(7)
	if back != o {
		t.Fatalf("post-restore accumulation diverged: %+v vs %+v", back, o)
	}
}
