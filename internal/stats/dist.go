package stats

import (
	"math"
	"math/rand"
)

// Exponential draws an exponentially distributed value with the given mean
// (scale). Failure inter-arrival times in the generator and the analytic
// checkpoint model both assume exponential gaps, as the paper does.
func Exponential(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return rng.ExpFloat64() * mean
}

// Poisson draws a Poisson-distributed count with the given mean using
// Knuth's method for small means and a normal approximation above 30 (the
// generator samples per-tick message counts, where the mean is small).
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := rng.NormFloat64()*math.Sqrt(mean) + mean
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// LogNormal draws exp(N(mu, sigma^2)). Burst sizes and cascade delays use
// lognormal spreads: most are short, a long tail reaches hours, matching
// the delay distribution in the paper's Figure 6.
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(rng.NormFloat64()*sigma + mu)
}

// Weibull draws a Weibull(shape k, scale lambda) value; shape < 1 models
// the infant-mortality hazard of hardware components.
func Weibull(rng *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// Bernoulli reports true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// ClampedNormal draws N(mean, sd) truncated below at lo.
func ClampedNormal(rng *rand.Rand, mean, sd, lo float64) float64 {
	v := rng.NormFloat64()*sd + mean
	if v < lo {
		return lo
	}
	return v
}
