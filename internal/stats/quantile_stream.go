package stats

import "sort"

// StreamingQuantile estimates a fixed quantile of a stream in O(1) memory
// using the P-square algorithm (Jain & Chlamtac, 1985). The prediction
// engine uses one per chain to adapt the expected-failure window to the
// delays actually observed online — the "dynamic time window" idea of the
// authors' earlier SLAML 2011 work, which this paper builds on.
type StreamingQuantile struct {
	p       float64
	n       int64
	heights [5]float64
	pos     [5]float64
	want    [5]float64
	incr    [5]float64
	warm    []float64
}

// NewStreamingQuantile returns an estimator for quantile p in (0, 1).
func NewStreamingQuantile(p float64) *StreamingQuantile {
	if p <= 0 {
		p = 0.01
	}
	if p >= 1 {
		p = 0.99
	}
	return &StreamingQuantile{
		p:    p,
		want: [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5},
		incr: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

// N returns the number of observations seen.
func (q *StreamingQuantile) N() int64 { return q.n }

// Add folds one observation into the estimator.
func (q *StreamingQuantile) Add(x float64) {
	q.n++
	if len(q.warm) < 5 {
		q.warm = append(q.warm, x)
		if len(q.warm) == 5 {
			sort.Float64s(q.warm)
			copy(q.heights[:], q.warm)
			q.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}
	// Find the cell x falls into and update extreme markers.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.want {
		q.want[i] += q.incr[i]
	}
	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

// parabolic applies the P-square parabolic prediction for marker i.
func (q *StreamingQuantile) parabolic(i int, sign float64) float64 {
	num1 := q.pos[i] - q.pos[i-1] + sign
	num2 := q.pos[i+1] - q.pos[i] - sign
	den1 := q.heights[i+1] - q.heights[i]
	den2 := q.heights[i] - q.heights[i-1]
	return q.heights[i] + sign/(q.pos[i+1]-q.pos[i-1])*
		(num1*den1/(q.pos[i+1]-q.pos[i])+num2*den2/(q.pos[i]-q.pos[i-1]))
}

// linear is the fallback piecewise-linear prediction.
func (q *StreamingQuantile) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return q.heights[i] + sign*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current quantile estimate. Before five observations it
// falls back to the exact small-sample quantile (0 for an empty stream).
func (q *StreamingQuantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if len(q.warm) < 5 {
		tmp := append([]float64(nil), q.warm...)
		sort.Float64s(tmp)
		return Quantile(tmp, q.p)
	}
	return q.heights[2]
}

// QuantileState is the serialisable form of a StreamingQuantile: the
// five P-square markers plus the warm-up buffer. A monitor snapshot
// persists one per adaptive-window tracker so a restarted process keeps
// the windows it had already tightened.
type QuantileState struct {
	P       float64    `json:"p"`
	N       int64      `json:"n"`
	Heights [5]float64 `json:"heights"`
	Pos     [5]float64 `json:"pos"`
	Want    [5]float64 `json:"want"`
	Warm    []float64  `json:"warm,omitempty"`
}

// State snapshots the estimator.
func (q *StreamingQuantile) State() QuantileState {
	return QuantileState{
		P:       q.p,
		N:       q.n,
		Heights: q.heights,
		Pos:     q.pos,
		Want:    q.want,
		Warm:    append([]float64(nil), q.warm...),
	}
}

// RestoreStreamingQuantile rebuilds an estimator from a snapshot taken
// by State. The increment vector is derived from P, everything else is
// copied verbatim, so the restored estimator continues the stream
// bit-identically.
func RestoreStreamingQuantile(st QuantileState) *StreamingQuantile {
	q := NewStreamingQuantile(st.P)
	q.n = st.N
	q.heights = st.Heights
	q.pos = st.Pos
	if st.N >= 5 {
		q.want = st.Want
	}
	q.warm = append([]float64(nil), st.Warm...)
	return q
}
