package evaluate

import (
	"math/rand"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/topology"
)

func outcomeWithRates(nPred int, pRate float64, nFail int, rRate float64, seed int64) *Outcome {
	rng := rand.New(rand.NewSource(seed))
	o := &Outcome{}
	for i := 0; i < nPred; i++ {
		o.PredMatched = append(o.PredMatched, rng.Float64() < pRate)
	}
	for i := 0; i < nFail; i++ {
		o.FailureHit = append(o.FailureHit, rng.Float64() < rRate)
	}
	return o
}

func TestBootstrapCoversTruth(t *testing.T) {
	o := outcomeWithRates(400, 0.9, 300, 0.45, 1)
	p, r := o.Bootstrap(2000, 2)
	if !p.Contains(0.9) {
		t.Errorf("precision CI [%v, %v] misses 0.9", p.Lo, p.Hi)
	}
	if !r.Contains(0.45) {
		t.Errorf("recall CI [%v, %v] misses 0.45", r.Lo, r.Hi)
	}
	if p.Hi-p.Lo <= 0 || p.Hi-p.Lo > 0.15 {
		t.Errorf("precision CI width %v implausible for n=400", p.Hi-p.Lo)
	}
}

func TestBootstrapWidthShrinksWithN(t *testing.T) {
	small := outcomeWithRates(50, 0.5, 50, 0.5, 3)
	big := outcomeWithRates(5000, 0.5, 5000, 0.5, 3)
	ps, _ := small.Bootstrap(1000, 4)
	pb, _ := big.Bootstrap(1000, 4)
	if pb.Hi-pb.Lo >= ps.Hi-ps.Lo {
		t.Errorf("CI did not shrink with sample size: %v vs %v", pb.Hi-pb.Lo, ps.Hi-ps.Lo)
	}
}

func TestBootstrapEmpty(t *testing.T) {
	o := &Outcome{}
	p, r := o.Bootstrap(100, 5)
	if p != (Interval{}) || r != (Interval{}) {
		t.Error("empty outcome should yield zero intervals")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	o := outcomeWithRates(100, 0.7, 100, 0.3, 6)
	p1, r1 := o.Bootstrap(500, 7)
	p2, r2 := o.Bootstrap(500, 7)
	if p1 != p2 || r1 != r2 {
		t.Error("same seed produced different intervals")
	}
}

func TestLeadByCategoryPopulated(t *testing.T) {
	// Reuse the category fixture from evaluate_test.go.
	pred := mkPred(t0, time.Minute, "R00-M0-N0-C:J02-U01", topology.ScopeNode)
	fail := mkFail(t0.Add(time.Minute), "memory", "R00-M0-N0-C:J02-U01")
	out := Score(resultWith(pred), []gen.FailureRecord{fail}, DefaultMatchConfig())
	lead, ok := out.LeadByCategory["memory"]
	if !ok || lead.N() != 1 {
		t.Fatalf("LeadByCategory = %+v", out.LeadByCategory)
	}
	if got := lead.Mean(); got < 59 || got > 61 {
		t.Errorf("mean lead = %v s, want ~60", got)
	}
}
