package evaluate

import (
	"math/rand"
	"sort"
)

// Interval is a percentile confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Bootstrap derives 95% percentile confidence intervals for the outcome's
// precision and recall by resampling the per-prediction and per-failure
// match indicators with replacement. A single evaluation campaign gives
// point estimates only; the intervals say how much of the reported
// difference between methods is sampling noise.
func (o *Outcome) Bootstrap(iters int, seed int64) (precision, recall Interval) {
	if iters < 1 {
		iters = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	precision = resampleCI(rng, o.PredMatched, iters)
	recall = resampleCI(rng, o.FailureHit, iters)
	return precision, recall
}

// resampleCI bootstraps the mean of a boolean sample.
func resampleCI(rng *rand.Rand, flags []bool, iters int) Interval {
	n := len(flags)
	if n == 0 {
		return Interval{}
	}
	means := make([]float64, iters)
	for it := 0; it < iters; it++ {
		hits := 0
		for i := 0; i < n; i++ {
			if flags[rng.Intn(n)] {
				hits++
			}
		}
		means[it] = float64(hits) / float64(n)
	}
	sort.Float64s(means)
	lo := means[int(0.025*float64(iters))]
	hi := means[int(0.975*float64(iters-1))]
	return Interval{Lo: lo, Hi: hi}
}
