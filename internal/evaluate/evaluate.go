// Package evaluate scores online predictions against generated ground
// truth: precision, recall, category breakdown (the paper's Figure 9),
// visible prediction-window distribution (Section VI.A) and chain-usage
// statistics. The matching rule mirrors the paper's setting: a prediction
// is correct when a real failure occurs inside its forecast window at a
// location covered by its predicted scope.
package evaluate

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/stats"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// MatchConfig tunes prediction-to-failure matching.
type MatchConfig struct {
	// Slack extends the match window beyond the forecast time: a failure
	// counts as predicted when it happens in
	// [IssuedAt, ExpectedAt + Slack].
	Slack time.Duration

	// RequireLocation demands that a failure location fall inside the
	// prediction's scope around its trigger. Disabling it reproduces the
	// paper's location-blind ablation (precision rises to ~94%).
	RequireLocation bool

	// AdaptiveWindows matches failures against each prediction's
	// [ExpectedEarliest, ExpectedLatest] bounds (learned online per
	// chain) instead of the span-proportional slack around ExpectedAt.
	AdaptiveWindows bool
}

// DefaultMatchConfig returns the matching rule used by the experiments.
func DefaultMatchConfig() MatchConfig {
	return MatchConfig{Slack: 3 * time.Minute, RequireLocation: true}
}

// CategoryStats reports per-category outcome (one bar of Figure 9).
type CategoryStats struct {
	Category  string
	Total     int     // ground-truth failures of this category
	Predicted int     // of those, how many were forecast in time
	Share     float64 // category's share of all failures
}

// Recall returns the category's recall.
func (c CategoryStats) Recall() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Predicted) / float64(c.Total)
}

// Outcome is the full evaluation result.
type Outcome struct {
	Predictions int // usable (non-late) predictions
	LateDropped int // predictions that arrived after their window

	TruePositives  int
	FalsePositives int
	FailuresTotal  int
	FailuresHit    int

	Precision float64
	Recall    float64

	ByCategory map[string]*CategoryStats

	// Lead-time distribution over correct predictions (visible window).
	LeadHist *stats.DelayHistogram

	// ChainsUsed / ChainsLoaded give the "Seq Used" column of Table III.
	ChainsUsed   int
	ChainsLoaded int

	// PredMatched records, per usable prediction, whether it matched a
	// failure; FailureHit records, per failure (time order), whether any
	// prediction covered it. Bootstrap resamples these.
	PredMatched []bool
	FailureHit  []bool

	// LeadByCategory accumulates the visible windows (seconds) of the
	// predictions that covered each category's failures.
	LeadByCategory map[string]*stats.Online
}

// SeqUsedFraction returns the share of loaded chains that fired at least
// once.
func (o *Outcome) SeqUsedFraction() float64 {
	if o.ChainsLoaded == 0 {
		return 0
	}
	return float64(o.ChainsUsed) / float64(o.ChainsLoaded)
}

// Score matches predictions against ground-truth failures.
func Score(res *predict.Result, failures []gen.FailureRecord, cfg MatchConfig) *Outcome {
	out := &Outcome{
		ByCategory:     make(map[string]*CategoryStats),
		LeadHist:       stats.NewDelayHistogram(),
		ChainsUsed:     len(res.Stats.ChainsUsed),
		ChainsLoaded:   res.Stats.ChainsLoaded,
		LeadByCategory: make(map[string]*stats.Online),
	}
	for _, f := range failures {
		cs, ok := out.ByCategory[f.Category]
		if !ok {
			cs = &CategoryStats{Category: f.Category}
			out.ByCategory[f.Category] = cs
		}
		cs.Total++
	}
	out.FailuresTotal = len(failures)
	for _, cs := range out.ByCategory {
		if out.FailuresTotal > 0 {
			cs.Share = float64(cs.Total) / float64(out.FailuresTotal)
		}
	}

	// Failures sorted by time for binary search.
	byTime := append([]gen.FailureRecord(nil), failures...)
	sort.Slice(byTime, func(i, j int) bool { return byTime[i].Time.Before(byTime[j].Time) })
	times := make([]time.Time, len(byTime))
	for i, f := range byTime {
		times[i] = f.Time
	}
	hit := make([]bool, len(byTime))

	for _, p := range res.Predictions {
		if p.Late() {
			out.LateDropped++
			continue
		}
		out.Predictions++
		lo := searchTime(times, p.IssuedAt)
		var deadline time.Time
		if cfg.AdaptiveWindows && !p.ExpectedLatest.IsZero() {
			deadline = p.ExpectedLatest.Add(cfg.Slack)
		} else {
			// Forecast error grows with the chain's span (delays jitter
			// multiplicatively), so the slack scales with the lead
			// horizon.
			slack := cfg.Slack
			if rel := time.Duration(float64(p.ExpectedAt.Sub(p.TriggeredAt)) * 0.35); rel > slack {
				slack = rel
			}
			deadline = p.ExpectedAt.Add(slack)
		}
		matched := false
		for i := lo; i < len(byTime) && !byTime[i].Time.After(deadline); i++ {
			if cfg.RequireLocation && !locationMatches(p, byTime[i]) {
				continue
			}
			matched = true
			if !hit[i] {
				hit[i] = true
				out.FailuresHit++
				cat := byTime[i].Category
				out.ByCategory[cat].Predicted++
				lead, ok := out.LeadByCategory[cat]
				if !ok {
					lead = &stats.Online{}
					out.LeadByCategory[cat] = lead
				}
				lead.Add(p.Lead.Seconds())
			}
		}
		out.PredMatched = append(out.PredMatched, matched)
		if matched {
			out.TruePositives++
			out.LeadHist.Add(p.Lead)
		} else {
			out.FalsePositives++
		}
	}
	out.FailureHit = hit
	if out.Predictions > 0 {
		out.Precision = float64(out.TruePositives) / float64(out.Predictions)
	}
	if out.FailuresTotal > 0 {
		out.Recall = float64(out.FailuresHit) / float64(out.FailuresTotal)
	}
	return out
}

// locationMatches reports whether the failure touched a component inside
// the prediction's scope around its trigger — and whether that scope was
// honest: a prediction naming a whole rack or the whole system is only
// credited for failures that actually span comparably, otherwise
// over-broad forecasts would trivially "cover" every local fault.
func locationMatches(p predict.Prediction, f gen.FailureRecord) bool {
	failSpan := topology.SpanScope(f.Locations)
	if len(f.Locations) == 1 {
		failSpan = f.Locations[0].Level()
	}
	if p.Scope >= topology.ScopeRack && p.Scope > failSpan+1 {
		return false
	}
	area := p.Trigger.Truncate(p.Scope)
	for _, loc := range f.Locations {
		if area.Contains(loc) || loc.Contains(p.Trigger) {
			return true
		}
	}
	return false
}

func searchTime(times []time.Time, t time.Time) int {
	return sort.Search(len(times), func(i int) bool { return !times[i].Before(t) })
}

// String renders the outcome as a Table III-style row plus breakdown.
func (o *Outcome) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "precision=%.1f%% recall=%.1f%% preds=%d (late %d) seq-used=%d/%d (%.1f%%) failures=%d/%d\n",
		100*o.Precision, 100*o.Recall, o.Predictions, o.LateDropped,
		o.ChainsUsed, o.ChainsLoaded, 100*o.SeqUsedFraction(), o.FailuresHit, o.FailuresTotal)
	cats := make([]string, 0, len(o.ByCategory))
	for k := range o.ByCategory {
		cats = append(cats, k)
	}
	sort.Strings(cats)
	for _, k := range cats {
		c := o.ByCategory[k]
		fmt.Fprintf(&b, "  %-10s share=%5.1f%%  recall=%5.1f%% (%d/%d)\n",
			c.Category, 100*c.Share, 100*c.Recall(), c.Predicted, c.Total)
	}
	return b.String()
}

// WindowStats summarises the visible prediction windows of correct
// predictions, matching Section VI.A's reporting.
type WindowStats struct {
	Over10s   float64 // fraction with more than 10 s visible window
	Over1min  float64
	Over10min float64
}

// Windows derives the window statistics from an outcome.
func (o *Outcome) Windows() WindowStats {
	h := o.LeadHist
	if h.Total() == 0 {
		return WindowStats{}
	}
	return WindowStats{
		Over10s:   h.TenToMinute() + h.MinuteToTen() + h.OverTenMin(),
		Over1min:  h.MinuteToTen() + h.OverTenMin(),
		Over10min: h.OverTenMin(),
	}
}
