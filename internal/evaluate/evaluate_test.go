package evaluate

import (
	"strings"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/location"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/topology"
)

var t0 = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

func mkPred(issued time.Time, lead time.Duration, trigger string, scope topology.Scope) predict.Prediction {
	return predict.Prediction{
		TriggeredAt: issued.Add(-time.Millisecond),
		IssuedAt:    issued,
		ExpectedAt:  issued.Add(lead),
		Lead:        lead,
		Trigger:     topology.MustParse(trigger),
		Scope:       scope,
		ChainKey:    "1@0|2@6",
		ChainSize:   2,
	}
}

func mkFail(at time.Time, category string, locs ...string) gen.FailureRecord {
	f := gen.FailureRecord{Time: at, Archetype: category, Category: category}
	for _, l := range locs {
		f.Locations = append(f.Locations, topology.MustParse(l))
	}
	return f
}

func resultWith(preds ...predict.Prediction) *predict.Result {
	r := &predict.Result{Predictions: preds}
	r.Stats.ChainsLoaded = 5
	r.Stats.ChainsUsed = map[string]int{"1@0|2@6": len(preds)}
	return r
}

func TestScorePerfectPrediction(t *testing.T) {
	pred := mkPred(t0, time.Minute, "R00-M0-N0-C:J02-U01", topology.ScopeNode)
	fail := mkFail(t0.Add(time.Minute), "memory", "R00-M0-N0-C:J02-U01")
	out := Score(resultWith(pred), []gen.FailureRecord{fail}, DefaultMatchConfig())
	if out.Precision != 1 || out.Recall != 1 {
		t.Errorf("precision=%v recall=%v, want 1/1", out.Precision, out.Recall)
	}
	if out.TruePositives != 1 || out.FalsePositives != 0 {
		t.Errorf("TP=%d FP=%d", out.TruePositives, out.FalsePositives)
	}
}

func TestScoreWrongLocationIsFalsePositive(t *testing.T) {
	pred := mkPred(t0, time.Minute, "R00-M0-N0-C:J02-U01", topology.ScopeNode)
	fail := mkFail(t0.Add(time.Minute), "memory", "R63-M1-N9-C:J02-U01")
	out := Score(resultWith(pred), []gen.FailureRecord{fail}, DefaultMatchConfig())
	if out.Precision != 0 {
		t.Errorf("precision = %v, want 0", out.Precision)
	}
	if out.Recall != 0 {
		t.Errorf("recall = %v, want 0 (failure unmatched)", out.Recall)
	}
}

func TestScoreLocationBlindMatches(t *testing.T) {
	pred := mkPred(t0, time.Minute, "R00-M0-N0-C:J02-U01", topology.ScopeNode)
	fail := mkFail(t0.Add(time.Minute), "memory", "R63-M1-N9-C:J02-U01")
	cfg := DefaultMatchConfig()
	cfg.RequireLocation = false
	out := Score(resultWith(pred), []gen.FailureRecord{fail}, cfg)
	if out.Precision != 1 || out.Recall != 1 {
		t.Errorf("location-blind precision=%v recall=%v", out.Precision, out.Recall)
	}
}

func TestScopeWidensMatch(t *testing.T) {
	// Trigger on one node, failure on a different node of the same
	// midplane: matches only with midplane scope.
	pred := mkPred(t0, time.Minute, "R05-M1-N0-C:J00-U00", topology.ScopeMidplane)
	fail := mkFail(t0.Add(time.Minute), "memory", "R05-M1-N7-C:J03-U01")
	out := Score(resultWith(pred), []gen.FailureRecord{fail}, DefaultMatchConfig())
	if out.TruePositives != 1 {
		t.Error("midplane-scope prediction should match midplane failure")
	}
	narrow := mkPred(t0, time.Minute, "R05-M1-N0-C:J00-U00", topology.ScopeNode)
	out = Score(resultWith(narrow), []gen.FailureRecord{fail}, DefaultMatchConfig())
	if out.TruePositives != 0 {
		t.Error("node-scope prediction should not match another node")
	}
}

func TestLatePredictionsDropped(t *testing.T) {
	late := mkPred(t0, -time.Second, "R00-M0-N0-C:J02-U01", topology.ScopeNode)
	fail := mkFail(t0, "io", "R00-M0-N0-C:J02-U01")
	out := Score(resultWith(late), []gen.FailureRecord{fail}, DefaultMatchConfig())
	if out.LateDropped != 1 || out.Predictions != 0 {
		t.Errorf("late=%d usable=%d", out.LateDropped, out.Predictions)
	}
	if out.Recall != 0 {
		t.Error("late prediction must not earn recall")
	}
}

func TestScoreOutsideWindowIsMiss(t *testing.T) {
	pred := mkPred(t0, time.Minute, "R00-M0-N0-C:J02-U01", topology.ScopeNode)
	// Failure an hour later: far outside expected+slack.
	fail := mkFail(t0.Add(time.Hour), "memory", "R00-M0-N0-C:J02-U01")
	out := Score(resultWith(pred), []gen.FailureRecord{fail}, DefaultMatchConfig())
	if out.TruePositives != 0 {
		t.Error("failure outside window matched")
	}
}

func TestCategoryBreakdown(t *testing.T) {
	preds := []predict.Prediction{
		mkPred(t0, time.Minute, "R00-M0-N0-C:J02-U01", topology.ScopeNode),
	}
	fails := []gen.FailureRecord{
		mkFail(t0.Add(time.Minute), "memory", "R00-M0-N0-C:J02-U01"),
		mkFail(t0.Add(2*time.Hour), "network", "R63-M1-N9-C:J02-U01"),
		mkFail(t0.Add(3*time.Hour), "network", "R62-M1-N9-C:J02-U01"),
	}
	out := Score(resultWith(preds...), fails, DefaultMatchConfig())
	mem := out.ByCategory["memory"]
	net := out.ByCategory["network"]
	if mem.Total != 1 || mem.Predicted != 1 {
		t.Errorf("memory stats = %+v", mem)
	}
	if net.Total != 2 || net.Predicted != 0 {
		t.Errorf("network stats = %+v", net)
	}
	if mem.Recall() != 1 || net.Recall() != 0 {
		t.Error("category recalls wrong")
	}
	if got := net.Share; got < 0.66 || got > 0.67 {
		t.Errorf("network share = %v", got)
	}
	if !strings.Contains(out.String(), "network") {
		t.Error("String() missing category lines")
	}
}

func TestWindowsStats(t *testing.T) {
	preds := []predict.Prediction{
		mkPred(t0, 5*time.Second, "R00-M0-N0-C:J02-U01", topology.ScopeNode),
		mkPred(t0.Add(time.Hour), 30*time.Second, "R00-M0-N1-C:J02-U01", topology.ScopeNode),
		mkPred(t0.Add(2*time.Hour), 5*time.Minute, "R00-M0-N2-C:J02-U01", topology.ScopeNode),
		mkPred(t0.Add(3*time.Hour), 20*time.Minute, "R00-M0-N3-C:J02-U01", topology.ScopeNode),
	}
	var fails []gen.FailureRecord
	for _, p := range preds {
		fails = append(fails, mkFail(p.ExpectedAt, "memory", p.Trigger.String()))
	}
	out := Score(resultWith(preds...), fails, DefaultMatchConfig())
	w := out.Windows()
	if w.Over10s != 0.75 {
		t.Errorf("Over10s = %v, want 0.75", w.Over10s)
	}
	if w.Over1min != 0.5 {
		t.Errorf("Over1min = %v, want 0.5", w.Over1min)
	}
	if w.Over10min != 0.25 {
		t.Errorf("Over10min = %v, want 0.25", w.Over10min)
	}
}

func TestSeqUsedFraction(t *testing.T) {
	r := resultWith()
	out := Score(r, nil, DefaultMatchConfig())
	if got := out.SeqUsedFraction(); got != 0.2 {
		t.Errorf("SeqUsedFraction = %v, want 1/5", got)
	}
}

func TestEmptyEverything(t *testing.T) {
	out := Score(&predict.Result{Stats: predict.Stats{ChainsUsed: map[string]int{}}}, nil, DefaultMatchConfig())
	if out.Precision != 0 || out.Recall != 0 {
		t.Error("empty score should be zeros")
	}
	if out.SeqUsedFraction() != 0 {
		t.Error("empty SeqUsedFraction should be 0")
	}
	if (out.Windows() != WindowStats{}) {
		t.Error("empty windows should be zero")
	}
}

func TestAdaptiveWindowMatching(t *testing.T) {
	// A prediction with tight learned bounds: a failure inside them
	// matches, a failure past ExpectedLatest+Slack does not — even though
	// the static span-proportional slack would have accepted it.
	pred := mkPred(t0, 30*time.Minute, "R00-M0-N0-C:J02-U01", topology.ScopeNode)
	pred.ExpectedEarliest = pred.ExpectedAt.Add(-time.Minute)
	pred.ExpectedLatest = pred.ExpectedAt.Add(time.Minute)

	cfg := DefaultMatchConfig()
	cfg.AdaptiveWindows = true
	cfg.Slack = 30 * time.Second

	inside := mkFail(pred.ExpectedAt.Add(50*time.Second), "memory", "R00-M0-N0-C:J02-U01")
	out := Score(resultWith(pred), []gen.FailureRecord{inside}, cfg)
	if out.TruePositives != 1 {
		t.Error("failure inside adaptive bounds should match")
	}

	// 8 minutes past the forecast: inside the static 0.35*lead slack
	// (10.5 min) but outside the adaptive bounds.
	outside := mkFail(pred.ExpectedAt.Add(8*time.Minute), "memory", "R00-M0-N0-C:J02-U01")
	out = Score(resultWith(pred), []gen.FailureRecord{outside}, cfg)
	if out.TruePositives != 0 {
		t.Error("failure outside adaptive bounds matched")
	}
	cfg.AdaptiveWindows = false
	cfg.Slack = 3 * time.Minute
	out = Score(resultWith(pred), []gen.FailureRecord{outside}, cfg)
	if out.TruePositives != 1 {
		t.Error("static slack should have accepted the late failure (control)")
	}
}

// TestTableIIIShape is the headline integration test: the three methods'
// precision/recall must reproduce the ordering of the paper's Table III —
// hybrid and data-mining precision comparable and high, signal-only a bit
// lower; hybrid recall highest, signal-only close, data-mining far behind.
func TestTableIIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	total := 16 * 24 * time.Hour
	cut := t0.Add(5 * 24 * time.Hour)
	res := gen.New(gen.BlueGeneL(), 999).Generate(t0, total)
	org := helo.New(0)
	org.Assign(res.Records)
	train, test, testFailures := res.Split(cut)

	outcomes := map[correlate.Mode]*Outcome{}
	for _, mode := range []correlate.Mode{correlate.Hybrid, correlate.SignalOnly, correlate.DataMiningOnly} {
		model := correlate.Train(train, t0, cut, mode, correlate.DefaultConfig())
		profiles := location.Extract(train, model.Chains, t0, model.Step, 1)
		engine := predict.NewEngine(model, profiles, predict.DefaultConfig())
		result := engine.Run(test, cut, res.End)
		outcomes[mode] = Score(result, testFailures, DefaultMatchConfig())
		t.Logf("%s: %s", mode, outcomes[mode])
	}

	hy, sg, dm := outcomes[correlate.Hybrid], outcomes[correlate.SignalOnly], outcomes[correlate.DataMiningOnly]
	if hy.Recall < 0.25 {
		t.Errorf("hybrid recall = %v, want >= 0.25", hy.Recall)
	}
	if hy.Precision < 0.6 {
		t.Errorf("hybrid precision = %v, want >= 0.6", hy.Precision)
	}
	if dm.Recall >= hy.Recall {
		t.Errorf("data-mining recall %v should be far below hybrid %v", dm.Recall, hy.Recall)
	}
	// Table III's shape, asserted through its seed-robust invariants:
	// the hybrid matches signal-only's recall with a fraction of the
	// sequences and predictions, never clearly loses precision to it,
	// and the data-mining baseline keeps precision while losing a large
	// share of the recall.
	if hy.Recall < sg.Recall-0.02 {
		t.Errorf("hybrid recall %v should be >= signal-only %v (within slack)", hy.Recall, sg.Recall)
	}
	if hy.Precision < sg.Precision-0.02 {
		t.Errorf("hybrid precision %v clearly below signal-only %v", hy.Precision, sg.Precision)
	}
	if dm.Precision < hy.Precision-0.02 {
		t.Errorf("dm precision %v should stay at hybrid level %v", dm.Precision, hy.Precision)
	}
	if sg.ChainsLoaded <= 2*hy.ChainsLoaded {
		t.Errorf("signal-only sequences (%d) should dwarf hybrid's (%d)", sg.ChainsLoaded, hy.ChainsLoaded)
	}
	if sg.Predictions <= 2*hy.Predictions {
		t.Errorf("signal-only predictions (%d) should dwarf hybrid's (%d) for the same coverage",
			sg.Predictions, hy.Predictions)
	}
}
