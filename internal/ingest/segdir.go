package ingest

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
)

// SegDirOptions tunes a segment-directory reader.
type SegDirOptions struct {
	// Follow keeps the reader tailing the active segment: at the end of
	// the log it waits for more data (or a new segment) instead of
	// returning io.EOF.
	Follow bool
	// Poll is the tail re-check interval in Follow mode (<= 0 selects
	// 10ms).
	Poll time.Duration
}

// SegDir reads a segment directory written by SegmentWriter, in global
// record order, tailing across segment rolls.
//
// Corruption never wedges the reader: a frame with a bad CRC is
// quarantined (counted, its record index consumed) and reading
// continues at the next frame; a torn or unframeable tail in a sealed
// segment abandons the rest of that segment (a resync — the lost
// records are counted against the next segment's base index); a torn
// tail on the active segment means the writer is mid-append — in Follow
// mode the reader waits for the bytes to complete, otherwise it is
// quarantined as a truncated tail and the stream ends.
type SegDir struct {
	dir  string
	opts SegDirOptions

	f    *os.File
	base int64 // active segment's base record index
	rel  int64 // records consumed in the active segment
	pos  int64 // byte position in the active segment
	size int64 // cached segment size, refreshed when a read hits it
	buf  []byte

	stats  Stats
	closed bool
}

// OpenSegDir opens dir positioned at the first record of the lowest
// segment.
func OpenSegDir(dir string, opts SegDirOptions) (*SegDir, error) {
	if opts.Poll <= 0 {
		opts.Poll = 10 * time.Millisecond
	}
	bases, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(bases) == 0 {
		return nil, fmt.Errorf("ingest: no segments in %s", dir)
	}
	r := &SegDir{dir: dir, opts: opts}
	if err := r.openSegment(bases[0]); err != nil {
		return nil, err
	}
	return r, nil
}

// openSegment makes base the active segment, positioned at its first
// frame.
func (r *SegDir) openSegment(base int64) error {
	f, err := os.Open(segPath(r.dir, base))
	if err != nil {
		return err
	}
	if err := checkSegHeader(f, base); err != nil {
		f.Close()
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if r.f != nil {
		r.f.Close()
	}
	r.f, r.base, r.rel, r.pos, r.size = f, base, 0, segHeaderLen, st.Size()
	return nil
}

// refreshSize re-stats the active segment, reporting whether it grew
// past the cached size.
func (r *SegDir) refreshSize() (bool, error) {
	st, err := r.f.Stat()
	if err != nil {
		return false, err
	}
	if st.Size() > r.size {
		r.size = st.Size()
		return true, nil
	}
	return false, nil
}

// nextSegment returns the base of the segment after cur, or -1.
func (r *SegDir) nextSegment(cur int64) (int64, error) {
	bases, err := listSegments(r.dir)
	if err != nil {
		return -1, err
	}
	for _, b := range bases {
		if b > cur {
			return b, nil
		}
	}
	return -1, nil
}

// Next returns the next record. See the type docs for the corruption
// contract.
func (r *SegDir) Next(ctx context.Context) (logs.Record, error) {
	if r.closed {
		return logs.Record{}, ErrClosed
	}
	for {
		if err := ctx.Err(); err != nil {
			return logs.Record{}, err
		}
		payload, nbuf, size, ferr := readFrameAt(r.f, r.size, r.pos, r.buf)
		r.buf = nbuf
		if ferr == io.EOF || ferr == errFrameTorn {
			// The cached size may be stale while the writer appends.
			grew, err := r.refreshSize()
			if err != nil {
				return logs.Record{}, err
			}
			if grew {
				continue
			}
		}
		switch ferr {
		case nil:
			r.pos += size
			r.rel++
			rec, perr := logs.ParseRecord(string(payload))
			if perr != nil {
				r.stats.Quarantined++
				continue
			}
			r.stats.Delivered++
			return rec, nil
		case errFrameCRC:
			// Complete frame, bad payload: its index is consumed, the
			// framing after it is still trustworthy.
			r.pos += size
			r.rel++
			r.stats.Quarantined++
			continue
		default:
			// io.EOF (clean segment end), torn tail, or an invalid
			// header. All three resolve the same way: move on if a
			// newer segment exists, wait or end otherwise.
			next, err := r.nextSegment(r.base)
			if err != nil {
				return logs.Record{}, err
			}
			if next >= 0 {
				// Sealed segment. A clean end is the normal roll; bytes
				// left over are a torn tail to abandon (resync) — the
				// records they held are quarantined against the gap to
				// the next base.
				if ferr != io.EOF {
					r.stats.Resyncs++
					if lost := next - (r.base + r.rel); lost > 0 {
						r.stats.Quarantined += lost
					}
				}
				if err := r.openSegment(next); err != nil {
					return logs.Record{}, err
				}
				continue
			}
			// Active segment.
			if !r.opts.Follow {
				if ferr != io.EOF {
					// Truncated tail on the final segment: count what
					// the torn bytes swallowed and end the stream.
					r.stats.Resyncs++
					r.stats.Quarantined++
				}
				return logs.Record{}, io.EOF
			}
			// Tailing: the writer may be mid-append. Wait for growth,
			// bounded by ctx.
			if !sleepCtx(ctx, r.opts.Poll) {
				return logs.Record{}, ctx.Err()
			}
		}
	}
}

// sleepCtx sleeps for d or until ctx is done, reporting whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Offset reports the resume point after the last delivered record.
func (r *SegDir) Offset() Offset {
	return Offset{Records: r.base + r.rel, Bytes: r.pos}
}

// Seek repositions the reader to the record at off.Records using the
// segment names and index sidecars; only the residual stride within one
// index bucket is scanned.
func (r *SegDir) Seek(off Offset) error {
	if r.closed {
		return ErrClosed
	}
	target := off.Records
	if target < 0 {
		return fmt.Errorf("ingest: negative seek target %d", target)
	}
	bases, err := listSegments(r.dir)
	if err != nil {
		return err
	}
	if len(bases) == 0 {
		return fmt.Errorf("ingest: no segments in %s", r.dir)
	}
	i := sort.Search(len(bases), func(i int) bool { return bases[i] > target }) - 1
	if i < 0 {
		return fmt.Errorf("ingest: record %d is before the first segment (base %d)", target, bases[0])
	}
	if err := r.openSegment(bases[i]); err != nil {
		return err
	}
	rel := target - r.base
	startRel, startPos := indexFloor(idxPath(r.dir, r.base), rel)
	r.rel, r.pos = startRel, startPos
	for r.rel < rel {
		_, nbuf, size, ferr := readFrameAt(r.f, r.size, r.pos, r.buf)
		r.buf = nbuf
		switch ferr {
		case nil, errFrameCRC:
			r.pos += size
			r.rel++
		default:
			if grew, err := r.refreshSize(); err != nil {
				return err
			} else if grew {
				continue
			}
			return fmt.Errorf("ingest: seek to record %d: segment %020d ends at record %d",
				target, r.base, r.base+r.rel)
		}
	}
	return nil
}

// indexFloor returns the greatest sidecar entry at or below rel, or the
// first-frame position when the sidecar is missing or unusable.
func indexFloor(path string, rel int64) (startRel, startPos int64) {
	startRel, startPos = 0, segHeaderLen
	data, err := os.ReadFile(path)
	if err != nil { //nolint:elsaerrflow // a missing/unreadable sidecar is the designed fallback: scan from the first frame
		return startRel, startPos
	}
	for p := 0; p+16 <= len(data); p += 16 {
		er := int64(binary.BigEndian.Uint64(data[p : p+8]))
		ep := int64(binary.BigEndian.Uint64(data[p+8 : p+16]))
		if er > rel || ep < segHeaderLen {
			break
		}
		startRel, startPos = er, ep
	}
	return startRel, startPos
}

// Stats reports the error accounting so far.
func (r *SegDir) Stats() Stats { return r.stats }

// Close releases the reader.
func (r *SegDir) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.f != nil {
		return r.f.Close()
	}
	return nil
}
