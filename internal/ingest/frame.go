package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame format shared by the socket and segment backends: an 8-byte
// header — u32 payload length, u32 IEEE CRC of the payload, both
// big-endian — followed by the payload, a canonical record text line
// without the trailing newline. A zero-length frame (CRC 0) is the
// producer's end-of-stream marker on the socket backend and is invalid
// inside a segment.

// frameHeaderLen is the fixed frame header size.
const frameHeaderLen = 8

// MaxFramePayload bounds a frame's payload. It tracks the largest line
// the log codec accepts; anything bigger did not come out of a sane
// producer and is treated as stream corruption.
const MaxFramePayload = 1 << 20

// errFrameTorn reports a frame cut short by the end of the available
// bytes — the tail of an actively written segment, or a connection that
// died mid-frame.
var errFrameTorn = fmt.Errorf("ingest: torn frame")

// errFrameInvalid reports an impossible header (oversized length): the
// stream position does not hold a frame boundary.
var errFrameInvalid = fmt.Errorf("ingest: invalid frame header")

// errFrameCRC reports a complete frame whose payload failed its CRC.
var errFrameCRC = fmt.Errorf("ingest: frame CRC mismatch")

// appendFrame appends the framed payload to dst and returns it.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// writeFrame writes one framed payload to w.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeEndFrame writes the zero-length end-of-stream marker.
func writeEndFrame(w io.Writer) error {
	var hdr [frameHeaderLen]byte
	_, err := w.Write(hdr[:])
	return err
}

// readFrame reads one frame from r into buf (grown as needed), returning
// the payload view and the total frame size consumed. A zero-length
// frame returns (nil, frameHeaderLen, nil). Torn streams surface as
// errFrameTorn (clean EOF before any header byte stays io.EOF).
func readFrame(r io.Reader, buf []byte) (payload, newBuf []byte, size int, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, buf, 0, io.EOF
		}
		return nil, buf, 0, errFrameTorn
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	crc := binary.BigEndian.Uint32(hdr[4:8])
	if n == 0 {
		if crc != 0 {
			return nil, buf, 0, errFrameInvalid
		}
		return nil, buf, frameHeaderLen, nil
	}
	if n > MaxFramePayload {
		return nil, buf, 0, errFrameInvalid
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, buf, 0, errFrameTorn
	}
	if crc32.ChecksumIEEE(buf) != crc {
		return buf, buf, frameHeaderLen + int(n), errFrameCRC
	}
	return buf, buf, frameHeaderLen + int(n), nil
}

// readFrameAt decodes the frame starting at byte pos of r, whose
// readable size is limit. It returns the payload (in buf, grown as
// needed) and the frame size. pos == limit is io.EOF; a frame crossing
// limit is errFrameTorn.
func readFrameAt(r io.ReaderAt, limit, pos int64, buf []byte) (payload, newBuf []byte, size int64, err error) {
	if pos >= limit {
		return nil, buf, 0, io.EOF
	}
	var hdr [frameHeaderLen]byte
	if pos+frameHeaderLen > limit {
		return nil, buf, 0, errFrameTorn
	}
	if _, err := r.ReadAt(hdr[:], pos); err != nil {
		return nil, buf, 0, errFrameTorn
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	crc := binary.BigEndian.Uint32(hdr[4:8])
	if n == 0 || n > MaxFramePayload {
		return nil, buf, 0, errFrameInvalid
	}
	size = frameHeaderLen + int64(n)
	if pos+size > limit {
		return nil, buf, 0, errFrameTorn
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := r.ReadAt(buf, pos+frameHeaderLen); err != nil {
		return nil, buf, 0, errFrameTorn
	}
	if crc32.ChecksumIEEE(buf) != crc {
		return buf, buf, size, errFrameCRC
	}
	return buf, buf, size, nil
}
