package trainstore

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/elsa-hpc/elsa/internal/sig"
)

// randomTrains builds a deterministic train set with sparse and dense
// trains, including an empty one.
func randomTrains(seed int64) sig.SpikeTrains {
	rng := rand.New(rand.NewSource(seed))
	trains := make(sig.SpikeTrains)
	for id := 0; id < 60; id++ {
		n := rng.Intn(200)
		if id == 7 {
			n = 0 // empty train round-trips too
		}
		tr := make([]int, 0, n)
		t := 0
		for i := 0; i < n; i++ {
			t += 1 + rng.Intn(50)
			tr = append(tr, t)
		}
		trains[id*3] = tr // non-contiguous ids exercise the search
	}
	return trains
}

func openStore(t *testing.T, trains sig.SpikeTrains) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trains.elts")
	if err := Write(path, trains); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRoundTrip(t *testing.T) {
	trains := randomTrains(11)
	s := openStore(t, trains)
	nonEmpty := 0
	for id, tr := range trains {
		if len(tr) > 0 {
			nonEmpty++
		}
		got := s.Train(id)
		if len(tr) == 0 {
			if got != nil {
				t.Errorf("event %d: empty train came back with %d spikes", id, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, tr) {
			t.Errorf("event %d: train differs after round trip", id)
		}
	}
	if s.Len() != len(trains) {
		t.Errorf("Len = %d, want %d", s.Len(), len(trains))
	}
	if s.Train(999999) != nil || s.Train(-5) != nil {
		t.Error("lookup of an unknown event returned a train")
	}
}

// TestKernelEquivalence is the point of the store: the sweep kernels
// over mapped trains produce bit-identical correlations to the same
// kernels over in-memory trains.
func TestKernelEquivalence(t *testing.T) {
	trains := randomTrains(23)
	s := openStore(t, trains)
	mapped := s.SpikeTrains()

	cfg := sig.DefaultCrossCorrConfig()
	cfg.Horizon = 12000
	want := sig.AllPairs(trains, cfg)
	got := sig.AllPairs(mapped, cfg)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AllPairs over mapped trains differs: %d vs %d correlations", len(got), len(want))
	}
	if len(want) == 0 {
		t.Fatal("fixture produced no correlations; test proves nothing")
	}
}

func TestOpenRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	for name, blob := range map[string][]byte{
		"short":     {1, 2, 3},
		"bad-magic": append([]byte("NOPE"), make([]byte, 12)...),
	} {
		path := filepath.Join(dir, name)
		if err := writeRaw(path, blob); err != nil {
			t.Fatal(err)
		}
		if s, err := Open(path); err == nil {
			s.Close()
			t.Errorf("%s: corrupt store opened cleanly", name)
		}
	}
}

// TestTrainAllocFree pins the hotpath contract the elsaalloc analyzer
// proves statically: a warm Train lookup performs zero allocations.
func TestTrainAllocFree(t *testing.T) {
	trains := randomTrains(31)
	s := openStore(t, trains)
	ids := s.Events()
	allocs := testing.AllocsPerRun(200, func() {
		for _, id := range ids {
			if tr := s.Train(id); len(tr) > 0 && tr[0] < 0 {
				t.Fatal("impossible spike")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Train allocated %.1f times per sweep, want 0", allocs)
	}
}

func writeRaw(path string, blob []byte) error {
	return os.WriteFile(path, blob, 0o644)
}
