//go:build unix

package trainstore

import (
	"os"
	"syscall"
)

// mapping is a read-only view of a file's bytes. On unix it is a real
// mmap: the kernel pages train data in on demand and shares it across
// processes opening the same store.
type mapping struct {
	data []byte
}

func openMapping(path string) (mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return mapping{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return mapping{}, err
	}
	if st.Size() == 0 {
		return mapping{}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return mapping{}, err
	}
	return mapping{data: data}, nil
}

func (m mapping) bytes() []byte { return m.data }

func (m mapping) close() error {
	if m.data == nil {
		return nil
	}
	return syscall.Munmap(m.data)
}
