// Package trainstore is a memory-mapped, zero-copy store for packed
// event trains. Training over months of logs rebuilds the same spike
// trains (sorted outlier sample indices per event type) from raw
// records on every run; the store persists them once, packed, and maps
// them back in so the sweep kernels in internal/sig read directly from
// the mapped segment — no decode, no copy, no per-train allocation.
//
// File layout (little-endian, 8-byte aligned throughout):
//
//	offset 0:  magic "ELTS" (4B) | version u32
//	offset 8:  train count u64
//	offset 16: table: count × [event i64 | start u64 | len u64]
//	...        data: sum(len) × i64 spike sample indices
//
// The table is sorted by event id, so the hot accessor is a binary
// search plus a slice view into the mapping. On 64-bit platforms the
// view is a direct reinterpretation of the mapped bytes (int == int64);
// the store refuses to open on 32-bit platforms rather than corrupt
// silently.
package trainstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"strconv"
	"unsafe"

	"github.com/elsa-hpc/elsa/internal/sig"
)

var magic = [4]byte{'E', 'L', 'T', 'S'}

const version = 1

const headerLen = 16

// tableEntry mirrors one on-disk table row.
type tableEntry struct {
	event int64
	start uint64 // element index into the data section
	n     uint64
}

// Store is an open train store. The mapped data stays valid until
// Close; slices returned by Train alias it and must not be used after.
type Store struct {
	m     mapping
	table []tableEntry
	data  []int64 // view over the data section
}

// Write packs trains into path. Events are written in ascending id
// order, each train verbatim.
func Write(path string, trains sig.SpikeTrains) error {
	ids := make([]int, 0, len(trains))
	total := 0
	for id, tr := range trains {
		ids = append(ids, id)
		total += len(tr)
	}
	sort.Ints(ids)

	buf := make([]byte, 0, headerLen+24*len(ids)+8*total)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(ids)))
	start := uint64(0)
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(id)))
		buf = binary.LittleEndian.AppendUint64(buf, start)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(trains[id])))
		start += uint64(len(trains[id]))
	}
	for _, id := range ids {
		for _, t := range trains[id] {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(t)))
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Open maps path read-only.
func Open(path string) (*Store, error) {
	if strconv.IntSize != 64 {
		return nil, fmt.Errorf("trainstore: requires a 64-bit platform (int is %d bits)", strconv.IntSize)
	}
	if !littleEndian() {
		return nil, fmt.Errorf("trainstore: requires a little-endian platform")
	}
	m, err := openMapping(path)
	if err != nil {
		return nil, err
	}
	s, err := parse(m)
	if err != nil {
		m.close()
		return nil, err
	}
	return s, nil
}

func parse(m mapping) (*Store, error) {
	b := m.bytes()
	if len(b) < headerLen {
		return nil, fmt.Errorf("trainstore: file too short (%d bytes)", len(b))
	}
	if [4]byte(b[0:4]) != magic {
		return nil, fmt.Errorf("trainstore: bad magic %q", b[0:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != version {
		return nil, fmt.Errorf("trainstore: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint64(b[8:16])
	tableBytes := count * 24
	if uint64(len(b)) < headerLen+tableBytes {
		return nil, fmt.Errorf("trainstore: truncated table (%d trains, %d bytes)", count, len(b))
	}
	dataBytes := uint64(len(b)) - headerLen - tableBytes
	if dataBytes%8 != 0 {
		return nil, fmt.Errorf("trainstore: data section not 8-byte aligned (%d bytes)", dataBytes)
	}
	s := &Store{m: m}
	if count > 0 {
		s.table = unsafe.Slice((*tableEntry)(unsafe.Pointer(&b[headerLen])), count)
	}
	if dataBytes > 0 {
		s.data = unsafe.Slice((*int64)(unsafe.Pointer(&b[headerLen+tableBytes])), dataBytes/8)
	}
	// Validate the table once at open so the hot accessor can trust it.
	prev := int64(-1 << 62)
	for i, e := range s.table {
		if e.event <= prev {
			return nil, fmt.Errorf("trainstore: table not sorted at entry %d", i)
		}
		if e.start+e.n > uint64(len(s.data)) {
			return nil, fmt.Errorf("trainstore: train %d overruns data section", e.event)
		}
		prev = e.event
	}
	return s, nil
}

// Len returns the number of stored trains.
func (s *Store) Len() int { return len(s.table) }

// Events returns the stored event ids in ascending order.
func (s *Store) Events() []int {
	out := make([]int, len(s.table))
	for i, e := range s.table {
		out[i] = int(e.event)
	}
	return out
}

// Train returns the packed spike train for event id as a zero-copy view
// into the mapping (nil when the event is not stored). The view aliases
// mapped memory: it is valid until Close and must not be written.
//
//elsa:hotpath
func (s *Store) Train(id int) []int {
	lo, hi := 0, len(s.table)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.table[mid].event < int64(id) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(s.table) || s.table[lo].event != int64(id) {
		return nil
	}
	e := s.table[lo]
	if e.n == 0 {
		return nil
	}
	return unsafe.Slice((*int)(unsafe.Pointer(&s.data[e.start])), e.n)
}

// SpikeTrains returns the whole store as a sig.SpikeTrains whose slices
// are zero-copy views into the mapping — the sweep kernels consume it
// directly. The map itself is freshly allocated; the trains are not.
func (s *Store) SpikeTrains() sig.SpikeTrains {
	out := make(sig.SpikeTrains, len(s.table))
	for _, e := range s.table {
		out[int(e.event)] = s.Train(int(e.event))
	}
	return out
}

// Close unmaps the store. Views returned earlier become invalid.
func (s *Store) Close() error {
	s.table, s.data = nil, nil
	return s.m.close()
}

// littleEndian reports the platform byte order: the zero-copy table and
// data views reinterpret mapped bytes natively, and the file format is
// little-endian.
func littleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}
