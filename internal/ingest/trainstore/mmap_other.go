//go:build !unix

package trainstore

import "os"

// mapping on platforms without syscall.Mmap falls back to reading the
// whole file: still one flat buffer the accessors view zero-copy, just
// not demand-paged.
type mapping struct {
	data []byte
}

func openMapping(path string) (mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return mapping{}, err
	}
	return mapping{data: data}, nil
}

func (m mapping) bytes() []byte { return m.data }

func (m mapping) close() error { return nil }
