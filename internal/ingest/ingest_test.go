package ingest_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/ingest"
	"github.com/elsa-hpc/elsa/internal/logs"
)

var genStart = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

// testRecords generates a deterministic synthetic stream. Records pass
// through the canonical text codec, so EventID is the parsed -1 either
// way.
func testRecords(t *testing.T, hours int) []logs.Record {
	t.Helper()
	res := gen.New(gen.BlueGeneL(), 7).Generate(genStart, time.Duration(hours)*time.Hour)
	if len(res.Records) == 0 {
		t.Fatal("generator produced no records")
	}
	// Round-trip through the codec so in-memory records match what any
	// backend (which parses text payloads) will deliver.
	out := make([]logs.Record, len(res.Records))
	for i, r := range res.Records {
		rec, err := logs.ParseRecord(r.String())
		if err != nil {
			t.Fatalf("record %d does not round-trip: %v", i, err)
		}
		out[i] = rec
	}
	return out
}

// writeLogFile writes records as a canonical text file.
func writeLogFile(t *testing.T, recs []logs.Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := logs.WriteAll(f, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeSegDir writes records into a fresh segment directory.
func writeSegDir(t *testing.T, recs []logs.Record, opts ingest.SegmentOptions) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "segs")
	w, err := ingest.CreateSegmentDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// drainBackend pulls every record until io.EOF.
func drainBackend(t *testing.T, b ingest.Backend) []logs.Record {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var out []logs.Record
	for {
		rec, err := b.Next(ctx)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next after %d records: %v", len(out), err)
		}
		out = append(out, rec)
	}
}

func TestFileBackendDeliversAll(t *testing.T) {
	recs := testRecords(t, 2)
	fb, err := ingest.OpenFile(writeLogFile(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	got := drainBackend(t, fb)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("file backend delivered %d records, want %d (or contents differ)", len(got), len(recs))
	}
	if st := fb.Stats(); st.Delivered != int64(len(recs)) || st.Quarantined != 0 {
		t.Errorf("stats = %+v, want %d delivered, 0 quarantined", st, len(recs))
	}
}

func TestFileBackendSeekByteHint(t *testing.T) {
	recs := testRecords(t, 2)
	path := writeLogFile(t, recs)
	fb, err := ingest.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cut := len(recs) / 3
	for i := 0; i < cut; i++ {
		if _, err := fb.Next(ctx); err != nil {
			t.Fatal(err)
		}
	}
	off := fb.Offset()
	fb.Close()

	for name, seekOff := range map[string]ingest.Offset{
		"byte-hint": off,
		"rescan":    {Records: off.Records},
	} {
		fb2, err := ingest.OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := fb2.Seek(seekOff); err != nil {
			t.Fatalf("%s seek: %v", name, err)
		}
		got := drainBackend(t, fb2)
		if !reflect.DeepEqual(got, recs[cut:]) {
			t.Errorf("%s: resumed stream differs (%d records, want %d)", name, len(got), len(recs)-cut)
		}
		if d := fb2.Stats().Delivered; d != int64(len(recs)-cut) {
			t.Errorf("%s: delivered = %d, want %d", name, d, len(recs)-cut)
		}
		fb2.Close()
	}
}

func TestFileBackendQuarantinesBadLines(t *testing.T) {
	recs := testRecords(t, 1)
	path := filepath.Join(t.TempDir(), "dirty.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, "# comment")
	fmt.Fprintln(f, recs[0].String())
	fmt.Fprintln(f, "not a record at all")
	fmt.Fprintln(f, recs[1].String())
	f.Close()

	fb, err := ingest.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	got := drainBackend(t, fb)
	if len(got) != 2 {
		t.Fatalf("delivered %d records, want 2", len(got))
	}
	if st := fb.Stats(); st.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", st.Quarantined)
	}
}

func TestSegDirRollsAndDeliversAll(t *testing.T) {
	recs := testRecords(t, 2)
	// Tiny segments force many rolls.
	dir := writeSegDir(t, recs, ingest.SegmentOptions{SegmentBytes: 16 << 10, IndexEvery: 32})
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	r, err := ingest.OpenSegDir(dir, ingest.SegDirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := drainBackend(t, r)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("segdir delivered %d records, want %d (or contents differ)", len(got), len(recs))
	}
	if st := r.Stats(); st.Quarantined != 0 || st.Resyncs != 0 {
		t.Errorf("clean log accounted faults: %+v", st)
	}
}

func TestSegDirSeekEveryBucket(t *testing.T) {
	recs := testRecords(t, 1)
	dir := writeSegDir(t, recs, ingest.SegmentOptions{SegmentBytes: 32 << 10, IndexEvery: 16})
	for _, target := range []int{0, 1, 15, 16, 17, len(recs) / 2, len(recs) - 1, len(recs)} {
		r, err := ingest.OpenSegDir(dir, ingest.SegDirOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Seek(ingest.Offset{Records: int64(target)}); err != nil {
			t.Fatalf("seek %d: %v", target, err)
		}
		got := drainBackend(t, r)
		if len(got) != len(recs)-target {
			t.Errorf("seek %d: delivered %d records, want %d", target, len(got), len(recs)-target)
		} else if len(got) > 0 && !reflect.DeepEqual(got, recs[target:]) {
			t.Errorf("seek %d: stream contents differ", target)
		}
		r.Close()
	}
}

func TestSegDirFollowsLiveWriter(t *testing.T) {
	recs := testRecords(t, 1)
	dir := filepath.Join(t.TempDir(), "segs")
	w, err := ingest.CreateSegmentDir(dir, ingest.SegmentOptions{SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Seed one record so the reader has a segment to open.
	if err := w.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	r, err := ingest.OpenSegDir(dir, ingest.SegDirOptions{Follow: true, Poll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	done := make(chan error, 1)
	go func() {
		for _, rec := range recs[1:] {
			if err := w.Append(rec); err != nil {
				done <- err
				return
			}
		}
		done <- w.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got := make([]logs.Record, 0, len(recs))
	for len(got) < len(recs) {
		rec, err := r.Next(ctx)
		if err != nil {
			t.Fatalf("tailing Next after %d records: %v", len(got), err)
		}
		got = append(got, rec)
	}
	if err := <-done; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("tailed stream differs from written stream")
	}

	// With the writer closed and no more data, a cancelled ctx must
	// unblock the tail promptly (elsactxflow contract).
	shortCtx, shortCancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer shortCancel()
	if _, err := r.Next(shortCtx); err != context.DeadlineExceeded {
		t.Fatalf("tail Next under cancelled ctx = %v, want deadline exceeded", err)
	}
}

func TestSegmentWriterResumesAppend(t *testing.T) {
	recs := testRecords(t, 1)
	half := len(recs) / 2
	dir := filepath.Join(t.TempDir(), "segs")
	w, err := ingest.CreateSegmentDir(dir, ingest.SegmentOptions{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[:half] {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := ingest.CreateSegmentDir(dir, ingest.SegmentOptions{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := w2.NextIndex(), int64(half); got != want {
		t.Fatalf("resumed writer NextIndex = %d, want %d", got, want)
	}
	for _, r := range recs[half:] {
		if err := w2.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := ingest.OpenSegDir(dir, ingest.SegDirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := drainBackend(t, r); !reflect.DeepEqual(got, recs) {
		t.Fatalf("reassembled stream has %d records, want %d (or contents differ)", len(got), len(recs))
	}
}

func TestSocketBackendSingleProducer(t *testing.T) {
	recs := testRecords(t, 1)
	s, err := ingest.ListenSocket("tcp", "127.0.0.1:0", 256)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	go func() {
		conn, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			return
		}
		defer conn.Close()
		fc := ingest.NewFrameConn(conn)
		for _, r := range recs {
			if fc.WriteRecord(r) != nil {
				return
			}
		}
		fc.End()
	}()

	got := drainBackend(t, s)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("socket delivered %d records, want %d (or contents differ)", len(got), len(recs))
	}
	st := s.Stats()
	if st.Conns != 1 || st.AbortedConns != 0 || st.Quarantined != 0 {
		t.Errorf("stats = %+v, want one clean connection", st)
	}
	if got := s.Offset().Records; got != int64(len(recs)) {
		t.Errorf("offset = %d, want %d", got, len(recs))
	}
}

func TestSocketBackendUnixAndCancel(t *testing.T) {
	sockPath := filepath.Join(t.TempDir(), "ingest.sock")
	s, err := ingest.ListenSocket("unix", sockPath, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// No producer: a cancelled ctx must unblock Next promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := s.Next(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Next under cancelled ctx = %v, want deadline exceeded", err)
	}

	recs := testRecords(t, 1)[:10]
	go func() {
		conn, err := net.Dial("unix", sockPath)
		if err != nil {
			return
		}
		defer conn.Close()
		fc := ingest.NewFrameConn(conn)
		for _, r := range recs {
			if fc.WriteRecord(r) != nil {
				return
			}
		}
		fc.End()
	}()
	if got := drainBackend(t, s); !reflect.DeepEqual(got, recs) {
		t.Fatal("unix socket stream differs")
	}
	if err := s.Seek(ingest.Offset{Records: 0}); err != ingest.ErrNotSeekable {
		t.Errorf("socket Seek to past offset = %v, want ErrNotSeekable", err)
	}
}

// TestBackendEquivalence is the record-level half of the acceptance
// criterion: the same generated log through all three backends yields
// identical record streams.
func TestBackendEquivalence(t *testing.T) {
	recs := testRecords(t, 2)

	fb, err := ingest.OpenFile(writeLogFile(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	fromFile := drainBackend(t, fb)

	sd, err := ingest.OpenSegDir(writeSegDir(t, recs, ingest.SegmentOptions{SegmentBytes: 64 << 10}), ingest.SegDirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	fromSeg := drainBackend(t, sd)

	sock, err := ingest.ListenSocket("tcp", "127.0.0.1:0", 512)
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	go func() {
		conn, err := net.Dial("tcp", sock.Addr().String())
		if err != nil {
			return
		}
		defer conn.Close()
		fc := ingest.NewFrameConn(conn)
		for _, r := range recs {
			if fc.WriteRecord(r) != nil {
				return
			}
		}
		fc.End()
	}()
	fromSock := drainBackend(t, sock)

	if !reflect.DeepEqual(fromFile, recs) {
		t.Error("file stream differs from the source records")
	}
	if !reflect.DeepEqual(fromSeg, fromFile) {
		t.Error("segdir stream differs from file stream")
	}
	if !reflect.DeepEqual(fromSock, fromFile) {
		t.Error("socket stream differs from file stream")
	}
}

// TestSourceAdapter proves the RecordSource view drains a backend the
// way Pipeline.Run expects, and surfaces cancellation via Err.
func TestSourceAdapter(t *testing.T) {
	recs := testRecords(t, 1)
	fb, err := ingest.OpenFile(writeLogFile(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	got, err := logs.Drain(ingest.NewSource(context.Background(), fb))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("source adapter stream differs")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fb2, err := ingest.OpenFile(writeLogFile(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	src := ingest.NewSource(ctx, fb2)
	if _, ok := src.Next(); ok {
		t.Fatal("cancelled source delivered a record")
	}
	if src.Err() != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", src.Err())
	}
}

// TestBackendsClosedReturnErrClosed proves the declared lifecycle
// (//elsa:state open closed on Backend) at runtime for all three
// backends: Next and Seek after Close return the typed ErrClosed, which
// still satisfies errors.Is(err, os.ErrClosed) for pre-existing checks.
func TestBackendsClosedReturnErrClosed(t *testing.T) {
	recs := testRecords(t, 1)
	backends := map[string]ingest.Backend{}

	fb, err := ingest.OpenFile(writeLogFile(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	backends["file"] = fb

	sd, err := ingest.OpenSegDir(writeSegDir(t, recs, ingest.SegmentOptions{}), ingest.SegDirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	backends["segdir"] = sd

	sock, err := ingest.ListenSocket("tcp", "127.0.0.1:0", 16)
	if err != nil {
		t.Fatal(err)
	}
	backends["socket"] = sock

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for name, b := range backends {
		if err := b.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
		if _, err := b.Next(ctx); err != ingest.ErrClosed {
			t.Errorf("%s: Next after Close: err = %v, want ingest.ErrClosed", name, err)
		}
		if !errors.Is(func() error { _, err := b.Next(ctx); return err }(), os.ErrClosed) {
			t.Errorf("%s: Next after Close does not satisfy errors.Is(err, os.ErrClosed)", name)
		}
		if err := b.Close(); err != nil {
			t.Errorf("%s: second Close: %v", name, err)
		}
	}

	// Seek after Close for the random-access backends (the socket's Seek
	// contract is position-only and orthogonal to closing).
	if err := fb.Seek(ingest.Offset{}); err != ingest.ErrClosed {
		t.Errorf("file: Seek after Close: err = %v, want ingest.ErrClosed", err)
	}
	if err := sd.Seek(ingest.Offset{}); err != ingest.ErrClosed {
		t.Errorf("segdir: Seek after Close: err = %v, want ingest.ErrClosed", err)
	}
}
