// Package ingest abstracts record ingestion behind pluggable backends.
//
// The paper's offline analysis reads a flat log file once; a fleet-scale
// monitor ingests a durable, partitioned stream. Backend is the contract
// between the two worlds: a pull iterator with context-aware blocking,
// a stable resume offset, and quarantine-compatible error accounting.
// Three implementations ship with the package:
//
//   - File: the flat-file reader the batch tools always used, adapted to
//     track byte offsets so a monitor can resume mid-file;
//   - Socket: a unix/TCP listener speaking CRC-framed, length-prefixed
//     records, for collectors that push;
//   - SegDir: a Kafka-style segmented append-only log directory —
//     fixed-size CRC-framed segments with index sidecars, atomic segment
//     roll, and a tailing reader that follows across rolls and resumes
//     from a persisted offset.
//
// Backends deliver parsed records; malformed input is counted (and where
// possible skipped) rather than wedging the stream, mirroring the
// pipeline's quarantine discipline. Source adapts a Backend to the
// logs.RecordSource view the pipeline and batch Predict consume, so
// existing call sites are untouched.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/elsa-hpc/elsa/internal/logs"
)

// Offset is a stable resume point in a backend's stream. Records is
// authoritative: the number of records delivered so far, i.e. the global
// index of the next record to deliver. Bytes is a byte-position hint the
// file backend uses to avoid rescanning; backends that cannot honour it
// ignore it.
//
// Offsets ride in the monitor snapshot envelope, extending kill/resume
// stream-equality across backends: snapshot the monitor together with
// Offset(), then Seek a fresh backend there and feed the resumed monitor.
type Offset struct {
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes,omitempty"`
}

// Stats is a backend's error accounting, quarantine-compatible: nothing
// in here is fatal, everything is counted.
type Stats struct {
	// Delivered counts records handed to the consumer.
	Delivered int64
	// Quarantined counts records lost to frame corruption, CRC
	// mismatches or undecodable payloads — the stream continued.
	Quarantined int64
	// Resyncs counts recovery jumps: abandoned torn segment tails and
	// connections that died mid-frame.
	Resyncs int64
	// Conns / AbortedConns count accepted and abnormally closed
	// connections (socket backend only).
	Conns        int64
	AbortedConns int64
}

// ErrNotSeekable is returned by Seek on backends without random access
// (the socket listener) when asked for anything but their live position.
var ErrNotSeekable = errors.New("ingest: backend cannot seek")

// ErrClosed is returned by Next and Seek on a closed backend. It wraps
// os.ErrClosed so existing errors.Is(err, os.ErrClosed) checks keep
// working while the package gains its own typed sentinel.
var ErrClosed = fmt.Errorf("ingest: backend is closed: %w", os.ErrClosed)

// Backend is a pull-based record stream with resume support.
//
// Next blocks until a record is available, the stream ends (io.EOF), or
// ctx is done (ctx.Err()). Implementations select on ctx.Done() around
// every blocking wait, so a caller can always cancel out. Backends are
// not safe for concurrent use by multiple consumers.
//
//elsa:state open closed
type Backend interface {
	// Next returns the next record, io.EOF at clean end of stream,
	// ctx.Err() when cancelled, or ErrClosed after Close.
	//
	//elsa:requires open
	Next(ctx context.Context) (logs.Record, error)

	// Offset reports the resume point after the last delivered record.
	Offset() Offset

	// Seek repositions the stream so the next Next returns the record at
	// off. Backends without random access return ErrNotSeekable unless
	// off is already their position; closed backends return ErrClosed.
	//
	//elsa:requires open
	Seek(off Offset) error

	// Stats reports the error accounting so far.
	Stats() Stats

	// Close releases the backend. Next calls after Close return
	// ErrClosed; Close is idempotent.
	//
	//elsa:transition open->closed closed->closed
	Close() error
}

// Source adapts a Backend to the logs.RecordSource view Pipeline.Run and
// batch Predict consume. The context bounds every Next: when it fires,
// the source ends with the context error in Err.
type Source struct {
	ctx context.Context
	b   Backend
	err error
}

// NewSource wraps b as a RecordSource bounded by ctx.
func NewSource(ctx context.Context, b Backend) *Source {
	return &Source{ctx: ctx, b: b}
}

// Next pulls the next record from the backend.
func (s *Source) Next() (logs.Record, bool) {
	if s.err != nil {
		return logs.Record{}, false
	}
	rec, err := s.b.Next(s.ctx)
	if err != nil {
		if err != io.EOF {
			s.err = err
		}
		return logs.Record{}, false
	}
	return rec, true
}

// Err returns the error that ended the stream, or nil at clean EOF.
func (s *Source) Err() error { return s.err }
