package ingest

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/resilience"
)

// RedialOptions tunes the producer-side reconnect loop. Reconnects back
// off with the capped jittered exponential schedule the supervision
// layer uses (resilience.Backoff): attempt n waits min(Base<<n, Max),
// jittered, so a dead listener costs a handful of spaced dials instead
// of a busy-loop.
type RedialOptions struct {
	// Base/Max bound the exponential backoff between dial attempts.
	// <= 0 selects DefaultRedialBase / DefaultRedialMax.
	Base time.Duration
	Max  time.Duration
	// Jitter is the randomised fraction of each delay (0..1); <= 0
	// selects the resilience default.
	Jitter float64
	// Seed seeds the jitter source; the same seed reproduces the same
	// delay schedule.
	Seed int64
	// MaxAttempts bounds how many dials one connect (or reconnect) may
	// try before giving up with the last dial error; <= 0 selects
	// DefaultRedialAttempts. The context bounds the wait regardless.
	MaxAttempts int
	// Sleep injects the delay implementation; nil selects a
	// context-aware timer sleep. Tests pass a recorder so the schedule
	// is observable without real waiting.
	Sleep func(ctx context.Context, d time.Duration) error
	// Dial injects the dial function; nil selects net.Dial. Tests use it
	// to fail deterministically.
	Dial func(network, addr string) (net.Conn, error)
}

// Redial defaults.
const (
	DefaultRedialBase     = 50 * time.Millisecond
	DefaultRedialMax      = 5 * time.Second
	DefaultRedialAttempts = 8
)

func (o RedialOptions) normalised() RedialOptions {
	if o.Base <= 0 {
		o.Base = DefaultRedialBase
	}
	if o.Max <= 0 {
		o.Max = DefaultRedialMax
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultRedialAttempts
	}
	if o.Sleep == nil {
		o.Sleep = func(ctx context.Context, d time.Duration) error {
			if !sleepCtx(ctx, d) {
				return ctx.Err()
			}
			return nil
		}
	}
	if o.Dial == nil {
		o.Dial = net.Dial
	}
	return o
}

// RedialConn is a FrameConn producer that survives connection loss: a
// failed write closes the connection, redials with capped jittered
// exponential backoff and rewrites the frame on the fresh connection.
// It is the collector-side counterpart of the Socket backend's
// reconnect tolerance (a connection dying mid-frame is a resync on the
// listener; the producer's replay resumes the stream). Not safe for
// concurrent use.
type RedialConn struct {
	network, addr string
	opts          RedialOptions
	bo            *resilience.Backoff

	conn net.Conn
	fc   *FrameConn

	redials atomic.Int64
}

// DialFrame connects to a Socket backend with backoff: the first
// connect already retries, so a producer started before its listener
// comes up (or pointed at one that is restarting) waits it out instead
// of failing — or busy-looping — immediately.
func DialFrame(ctx context.Context, network, addr string, opts RedialOptions) (*RedialConn, error) {
	opts = opts.normalised()
	rc := &RedialConn{
		network: network,
		addr:    addr,
		opts:    opts,
		bo:      resilience.NewBackoff(opts.Base, opts.Max, opts.Jitter, opts.Seed),
	}
	if err := rc.connect(ctx); err != nil {
		return nil, err
	}
	return rc, nil
}

// connect dials until it succeeds, the attempt budget is spent, or ctx
// ends. Attempts after the first sleep out the backoff schedule first.
func (rc *RedialConn) connect(ctx context.Context) error {
	var lastErr error
	for attempt := 0; attempt < rc.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := rc.opts.Sleep(ctx, rc.bo.Delay(attempt-1)); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := rc.opts.Dial(rc.network, rc.addr)
		if err == nil {
			rc.conn = conn
			rc.fc = NewFrameConn(conn)
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("ingest: dial %s %s: %d attempts exhausted: %w",
		rc.network, rc.addr, rc.opts.MaxAttempts, lastErr)
}

// WriteRecord frames one record, transparently reconnecting (with
// backoff) when the connection has died. The record is re-sent on the
// fresh connection; the listener side quarantines the torn frame of the
// dead one, so the stream continues without loss.
func (rc *RedialConn) WriteRecord(ctx context.Context, rec logs.Record) error {
	if rc.fc != nil {
		if err := rc.fc.WriteRecord(rec); err == nil {
			return nil
		}
		rc.dropConn()
	}
	rc.redials.Add(1)
	if err := rc.connect(ctx); err != nil {
		return err
	}
	return rc.fc.WriteRecord(rec)
}

// End sends the end-of-stream marker on the live connection (it does
// not reconnect: an end marker after a lost connection would terminate
// a stream the replacement producer is about to continue).
func (rc *RedialConn) End() error {
	if rc.fc == nil {
		return fmt.Errorf("ingest: end on a disconnected producer")
	}
	return rc.fc.End()
}

// Redials reports how many reconnect cycles writes have triggered.
func (rc *RedialConn) Redials() int64 { return rc.redials.Load() }

// Close closes the current connection, if any.
func (rc *RedialConn) Close() error {
	if rc.conn == nil {
		return nil
	}
	err := rc.conn.Close()
	rc.conn, rc.fc = nil, nil
	return err
}

// dropConn discards a dead connection before reconnecting.
func (rc *RedialConn) dropConn() {
	if rc.conn != nil {
		rc.conn.Close()
	}
	rc.conn, rc.fc = nil, nil
}
