package ingest

import (
	"context"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"github.com/elsa-hpc/elsa/internal/logs"
)

// Socket is the push backend: a unix or TCP listener accepting
// CRC-framed, length-prefixed record frames from any number of
// producers. Records from all connections funnel into one bounded queue
// in arrival order.
//
// Per-connection error accounting is quarantine-compatible: a bad frame
// header or CRC mismatch poisons only its connection (counted, the
// connection is dropped, the stream continues); an undecodable payload
// poisons only itself. A connection that dies mid-frame counts as a
// resync — a reconnecting producer resumes the stream, the reader never
// wedges.
//
// End of stream is explicit: a producer sends a zero-length end frame
// when done. Next returns io.EOF once an end frame has been seen and
// every accepted connection has drained and closed.
type Socket struct {
	ln    net.Listener
	recCh chan logs.Record
	eofCh chan struct{} // closed when ended && active == 0
	done  chan struct{} // closed by Close

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	active int64 // connections still reading
	ended  bool  // an end frame was seen
	closed bool

	wg   sync.WaitGroup
	recs atomic.Int64

	delivered   atomic.Int64
	quarantined atomic.Int64
	resyncs     atomic.Int64
	nconns      atomic.Int64
	aborted     atomic.Int64
}

// ListenSocket starts a socket backend on network ("tcp" or "unix") and
// address. queue bounds the arrival buffer (<= 0 selects 1024).
func ListenSocket(network, addr string, queue int) (*Socket, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	if queue <= 0 {
		queue = 1024
	}
	s := &Socket{
		ln:    ln,
		recCh: make(chan logs.Record, queue),
		eofCh: make(chan struct{}),
		done:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the listener's address (useful with ":0" TCP listens).
func (s *Socket) Addr() net.Addr { return s.ln.Addr() }

func (s *Socket) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil { //nolint:elsaerrflow // Accept fails only when Close tears the listener down: the exit signal, not a lost record
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.active++
		s.mu.Unlock()
		s.nconns.Add(1)
		s.wg.Add(1)
		go s.serve(conn)
	}
}

// serve reads frames off one connection until it ends. Sends into the
// bounded queue apply natural backpressure to the producer; Close
// unblocks them via the done channel.
func (s *Socket) serve(conn net.Conn) {
	defer s.wg.Done()
	clean := false
	var buf []byte
	for {
		payload, nbuf, _, err := readFrame(conn, buf)
		buf = nbuf
		if err != nil {
			switch err {
			case io.EOF:
				// Producer closed without an end frame: legitimate for
				// a long-lived collector that reconnects later.
				clean = true
			case errFrameCRC:
				// The payload arrived intact length-wise; count it and
				// drop the connection — after a CRC fault the framing
				// can no longer be trusted.
				s.quarantined.Add(1)
			default:
				// Torn mid-frame or an invalid header.
				s.resyncs.Add(1)
			}
			break
		}
		if payload == nil {
			// End-of-stream marker.
			clean = true
			s.mu.Lock()
			s.ended = true
			s.mu.Unlock()
			break
		}
		rec, perr := logs.ParseRecord(string(payload))
		if perr != nil {
			s.quarantined.Add(1)
			continue
		}
		select {
		case s.recCh <- rec:
		case <-s.done:
			s.finishConn(conn, clean)
			return
		}
	}
	if !clean {
		s.aborted.Add(1)
	}
	s.finishConn(conn, clean)
}

// finishConn retires a connection and closes eofCh when the stream is
// complete (end marker seen, no connection still reading). It is the
// single owner of the eofCh close: the select-guarded close below runs
// on at most one goroutine because fire requires active == 0 under the
// lock.
//
//elsa:chanowner s.eofCh
func (s *Socket) finishConn(conn net.Conn, clean bool) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.active--
	fire := s.ended && s.active == 0 && !s.closed
	s.mu.Unlock()
	if fire {
		// All producer sends happened before their connections retired,
		// so every record is already buffered when eofCh closes.
		select {
		case <-s.eofCh:
		default:
			close(s.eofCh)
		}
	}
}

// Next returns the next record from any connection.
func (s *Socket) Next(ctx context.Context) (logs.Record, error) {
	select {
	case rec := <-s.recCh:
		s.recs.Add(1)
		s.delivered.Add(1)
		return rec, nil
	case <-ctx.Done():
		return logs.Record{}, ctx.Err()
	case <-s.eofCh:
		// Drain what was buffered before the stream completed.
		select {
		case rec := <-s.recCh:
			s.recs.Add(1)
			s.delivered.Add(1)
			return rec, nil
		default:
			return logs.Record{}, io.EOF
		}
	case <-s.done:
		return logs.Record{}, ErrClosed
	}
}

// Offset reports how many records have been delivered. A socket stream
// has no random access; the offset is informational and rides in
// snapshots so a resumed monitor knows how far the dead one got.
func (s *Socket) Offset() Offset { return Offset{Records: s.recs.Load()} }

// Seek succeeds only for the current position: producers replay from
// their own cursors, the listener cannot rewind what peers will send.
func (s *Socket) Seek(off Offset) error {
	if off.Records == s.recs.Load() {
		return nil
	}
	return ErrNotSeekable
}

// Stats reports the per-connection error accounting, aggregated.
func (s *Socket) Stats() Stats {
	return Stats{
		Delivered:    s.delivered.Load(),
		Quarantined:  s.quarantined.Load(),
		Resyncs:      s.resyncs.Load(),
		Conns:        s.nconns.Load(),
		AbortedConns: s.aborted.Load(),
	}
}

// Close shuts the listener and every open connection down and unblocks
// any pending Next. It owns the done close: the closed flag under the
// lock makes the close path run once.
//
//elsa:chanowner s.done
func (s *Socket) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	close(s.done)
	s.wg.Wait()
	return err
}

// FrameConn is the producer side of the socket backend: it frames
// records onto an established connection. Callers dial with net.Dial
// and wrap the conn; End sends the end-of-stream marker.
type FrameConn struct {
	w   io.Writer
	buf []byte
}

// NewFrameConn wraps a producer-side connection (or any writer, for
// tests).
func NewFrameConn(w io.Writer) *FrameConn { return &FrameConn{w: w} }

// WriteRecord frames one record.
func (fc *FrameConn) WriteRecord(rec logs.Record) error {
	fc.buf = appendFrame(fc.buf[:0], []byte(rec.String()))
	_, err := fc.w.Write(fc.buf)
	return err
}

// End sends the end-of-stream marker. The connection stays open for the
// caller to close.
func (fc *FrameConn) End() error { return writeEndFrame(fc.w) }
