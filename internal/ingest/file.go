package ingest

import (
	"bufio"
	"context"
	"io"
	"os"

	"github.com/elsa-hpc/elsa/internal/logs"
)

// File reads canonical text records from a flat log file — the reader
// the batch tools always used, adapted to the Backend contract: it
// tracks the byte offset after every delivered record so a monitor can
// snapshot mid-file and Seek straight back without rescanning. Blank
// lines and '#' comments are skipped; undecodable lines are quarantined
// (counted, stream continues), matching the monitor daemon's ingest
// discipline rather than the batch tools' fail-fast one.
type File struct {
	f      *os.File
	br     *bufio.Reader
	recs   int64 // records delivered
	pos    int64 // byte offset of the next unread line
	stats  Stats
	closed bool
}

// OpenFile opens path as a file backend positioned at the start.
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &File{f: f, br: bufio.NewReaderSize(f, 1<<16)}, nil
}

// Next returns the next well-formed record. The file backend never
// blocks on anything but disk, but it still honours a done context
// between records so cancellation is prompt on huge files.
func (fb *File) Next(ctx context.Context) (logs.Record, error) {
	if fb.closed {
		return logs.Record{}, ErrClosed
	}
	for {
		if err := ctx.Err(); err != nil {
			return logs.Record{}, err
		}
		line, err := fb.br.ReadString('\n')
		if line == "" && err != nil {
			if err == io.EOF {
				return logs.Record{}, io.EOF
			}
			return logs.Record{}, err
		}
		fb.pos += int64(len(line))
		trimmed := trimEOL(line)
		if trimmed == "" || trimmed[0] == '#' {
			if err == io.EOF {
				return logs.Record{}, io.EOF
			}
			continue
		}
		rec, perr := logs.ParseRecord(trimmed)
		if perr != nil {
			fb.stats.Quarantined++
			if err == io.EOF {
				return logs.Record{}, io.EOF
			}
			continue
		}
		fb.recs++
		fb.stats.Delivered++
		return rec, nil
	}
}

// Offset reports the resume point after the last delivered record, with
// the byte position as a seek hint.
func (fb *File) Offset() Offset {
	return Offset{Records: fb.recs, Bytes: fb.pos}
}

// Seek repositions the backend. A byte hint written by this backend's
// Offset is honoured directly; without one the file is rescanned from
// the start, counting off.Records records.
func (fb *File) Seek(off Offset) error {
	if fb.closed {
		return ErrClosed
	}
	if off.Bytes > 0 {
		if _, err := fb.f.Seek(off.Bytes, io.SeekStart); err != nil {
			return err
		}
		fb.br.Reset(fb.f)
		fb.pos = off.Bytes
		fb.recs = off.Records
		return nil
	}
	if _, err := fb.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	fb.br.Reset(fb.f)
	fb.pos, fb.recs = 0, 0
	ctx := context.Background()
	for fb.recs < off.Records {
		if _, err := fb.Next(ctx); err != nil {
			return err
		}
	}
	// The scan above counted the skipped records as delivered; they were
	// delivered before the snapshot, not by this incarnation.
	fb.stats.Delivered -= off.Records
	return nil
}

// Stats reports the error accounting so far.
func (fb *File) Stats() Stats { return fb.stats }

// Close closes the underlying file.
func (fb *File) Close() error {
	if fb.closed {
		return nil
	}
	fb.closed = true
	return fb.f.Close()
}

// trimEOL strips a trailing \n or \r\n.
func trimEOL(s string) string {
	if n := len(s); n > 0 && s[n-1] == '\n' {
		s = s[:n-1]
	}
	if n := len(s); n > 0 && s[n-1] == '\r' {
		s = s[:n-1]
	}
	return s
}
