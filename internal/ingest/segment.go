package ingest

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/elsa-hpc/elsa/internal/logs"
)

// Segmented append-only log directory, Kafka-style. A directory holds
// numbered segments
//
//	00000000000000000000.seg  00000000000000000000.idx
//	00000000000000012288.seg  00000000000000012288.idx
//
// where the 20-digit name is the global index of the segment's first
// record. A segment starts with a 16-byte header (magic "ELSG", u32
// version, u64 base record index, all big-endian) followed by CRC
// frames, one record per frame (see frame.go). The .idx sidecar is a
// sparse index: fixed 16-byte entries [u64 relative record][u64 byte
// position], one every indexEvery records, letting a reader Seek to a
// record index without scanning the whole segment. The sidecar is a
// cache — a missing or truncated index only costs a longer scan.
//
// Rolls are atomic: the next segment is created O_EXCL, synced, and the
// directory fsynced before the old segment is considered sealed, so a
// crash never leaves two writers agreeing on different tails. Readers
// treat the segment with the highest base as the active tail and
// everything below as sealed (immutable).

// segMagic opens every segment file.
var segMagic = [4]byte{'E', 'L', 'S', 'G'}

// segVersion is the on-disk format version.
const segVersion = 1

// segHeaderLen is the fixed segment header size.
const segHeaderLen = 16

// DefaultSegmentBytes is the roll threshold: a segment is sealed once
// its byte size reaches it.
const DefaultSegmentBytes = 8 << 20

// DefaultIndexEvery is the sparse-index stride in records.
const DefaultIndexEvery = 512

// SegmentOptions tunes a segment writer.
type SegmentOptions struct {
	// SegmentBytes is the roll threshold (<= 0 selects
	// DefaultSegmentBytes).
	SegmentBytes int64
	// IndexEvery is the sparse-index stride (<= 0 selects
	// DefaultIndexEvery).
	IndexEvery int64
	// SyncEvery fsyncs the active segment every N appends (0 = only on
	// roll and Close; durability is the snapshot's job, not every
	// record's).
	SyncEvery int64
}

// SegmentWriter appends records to a segment directory.
type SegmentWriter struct {
	dir  string
	opts SegmentOptions

	f    *os.File
	idx  *os.File
	base int64 // global index of the current segment's first record
	n    int64 // records in the current segment
	pos  int64 // byte size of the current segment
	buf  []byte
}

// CreateSegmentDir creates (or opens for append) a segment directory.
// On an existing directory the writer resumes at the tail of the newest
// segment; a torn tail frame left by a crashed writer is truncated away
// before appending continues.
func CreateSegmentDir(dir string, opts SegmentOptions) (*SegmentWriter, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.IndexEvery <= 0 {
		opts.IndexEvery = DefaultIndexEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &SegmentWriter{dir: dir, opts: opts}
	bases, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(bases) == 0 {
		if err := w.createSegment(0); err != nil {
			return nil, err
		}
		return w, nil
	}
	if err := w.reopenTail(bases[len(bases)-1]); err != nil {
		return nil, err
	}
	return w, nil
}

// NextIndex returns the global index the next appended record gets.
func (w *SegmentWriter) NextIndex() int64 { return w.base + w.n }

// Append frames one record onto the active segment, rolling first if
// the segment is full.
func (w *SegmentWriter) Append(rec logs.Record) error {
	if w.f == nil {
		return os.ErrClosed
	}
	if w.pos >= w.opts.SegmentBytes {
		if err := w.roll(); err != nil {
			return err
		}
	}
	if w.n%w.opts.IndexEvery == 0 {
		var ent [16]byte
		binary.BigEndian.PutUint64(ent[0:8], uint64(w.n))
		binary.BigEndian.PutUint64(ent[8:16], uint64(w.pos))
		if _, err := w.idx.Write(ent[:]); err != nil {
			return err
		}
	}
	w.buf = appendFrame(w.buf[:0], []byte(rec.String()))
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	w.pos += int64(len(w.buf))
	w.n++
	if w.opts.SyncEvery > 0 && w.n%w.opts.SyncEvery == 0 {
		return w.f.Sync()
	}
	return nil
}

// Sync flushes the active segment and its index to stable storage.
func (w *SegmentWriter) Sync() error {
	if w.f == nil {
		return os.ErrClosed
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	return w.idx.Sync()
}

// Close seals the writer. The directory remains readable and appendable
// by a future writer.
func (w *SegmentWriter) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.Sync()
	if e := w.f.Close(); err == nil {
		err = e
	}
	if e := w.idx.Close(); err == nil {
		err = e
	}
	w.f, w.idx = nil, nil
	return err
}

// roll seals the active segment and opens the next one atomically: the
// new files are created and synced, then the directory entry is
// fsynced, before any append lands in them.
func (w *SegmentWriter) roll() error {
	if err := w.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	if err := w.idx.Close(); err != nil {
		return err
	}
	base := w.base + w.n
	w.f, w.idx = nil, nil
	return w.createSegment(base)
}

// createSegment creates the segment files for base and makes them the
// active tail. The segment is prepared under a temporary name and
// renamed into place, so a concurrent reader can never observe a
// segment file without its header (and a crash never leaves one).
func (w *SegmentWriter) createSegment(base int64) error {
	seg := segPath(w.dir, base)
	tmp := seg + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderLen]byte
	copy(hdr[0:4], segMagic[:])
	binary.BigEndian.PutUint32(hdr[4:8], segVersion)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(base))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := os.Rename(tmp, seg); err != nil {
		f.Close()
		return err
	}
	idx, err := os.OpenFile(idxPath(w.dir, base), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		f.Close()
		return err
	}
	if err := SyncDir(w.dir); err != nil {
		f.Close()
		idx.Close()
		return err
	}
	w.f, w.idx, w.base, w.n, w.pos = f, idx, base, 0, segHeaderLen
	return nil
}

// reopenTail resumes appending at the end of the newest segment,
// truncating a torn tail frame a crashed writer may have left.
func (w *SegmentWriter) reopenTail(base int64) error {
	seg := segPath(w.dir, base)
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if err := checkSegHeader(f, base); err != nil {
		f.Close()
		return err
	}
	// Scan to the last frame boundary; anything after it is a torn tail.
	pos, n := int64(segHeaderLen), int64(0)
	var buf []byte
	for {
		_, nbuf, size, err := readFrameAt(f, st.Size(), pos, buf)
		buf = nbuf
		if err != nil { //nolint:elsaerrflow // the error is the scan terminator; the torn tail it marks is truncated just below
			break // io.EOF (clean), torn, invalid or CRC: stop appending here
		}
		pos += size
		n++
	}
	if pos < st.Size() {
		if err := f.Truncate(pos); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(pos, 0); err != nil {
		f.Close()
		return err
	}
	// Rebuild the sidecar up to the scanned boundary so its entries are
	// consistent with the truncated tail.
	idx, err := os.OpenFile(idxPath(w.dir, base), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		f.Close()
		return err
	}
	w.f, w.idx, w.base, w.n, w.pos = f, idx, base, n, pos
	rescanPos, rescanN := int64(segHeaderLen), int64(0)
	for rescanN < n {
		if rescanN%w.opts.IndexEvery == 0 {
			var ent [16]byte
			binary.BigEndian.PutUint64(ent[0:8], uint64(rescanN))
			binary.BigEndian.PutUint64(ent[8:16], uint64(rescanPos))
			if _, err := idx.Write(ent[:]); err != nil {
				w.Close()
				return err
			}
		}
		_, nbuf, size, err := readFrameAt(f, pos, rescanPos, buf)
		buf = nbuf
		if err != nil {
			w.Close()
			return fmt.Errorf("ingest: segment %s changed under rescan: %v", seg, err)
		}
		rescanPos += size
		rescanN++
	}
	return nil
}

// segPath and idxPath name the files for a segment base.
func segPath(dir string, base int64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d.seg", base))
}

func idxPath(dir string, base int64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d.idx", base))
}

// listSegments returns the sorted base indices of the segments in dir.
func listSegments(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var bases []int64
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".seg") || len(name) != 24 {
			continue
		}
		base, err := strconv.ParseInt(name[:20], 10, 64)
		if err != nil { //nolint:elsaerrflow // filename validation: a non-numeric name is not a segment, not a serving-path error
			continue
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// checkSegHeader validates a segment's magic, version and base.
func checkSegHeader(f *os.File, base int64) error {
	var hdr [segHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("ingest: segment header: %v", err)
	}
	if [4]byte(hdr[0:4]) != segMagic {
		return fmt.Errorf("ingest: bad segment magic %q", hdr[0:4])
	}
	if v := binary.BigEndian.Uint32(hdr[4:8]); v != segVersion {
		return fmt.Errorf("ingest: unsupported segment version %d", v)
	}
	if b := int64(binary.BigEndian.Uint64(hdr[8:16])); b != base {
		return fmt.Errorf("ingest: segment header base %d does not match name %d", b, base)
	}
	return nil
}

// SyncDir fsyncs a directory so a just-created (or just-renamed) file's
// entry is durable: the segment-roll discipline, exported so snapshot
// writers can apply the same tmp+rename+dir-fsync sequence.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
