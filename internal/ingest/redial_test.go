package ingest

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/logs"
)

// TestDialFrameDeadListenerBacksOffNotBusyLoops is the regression test
// for the reconnect schedule: a dead listener must cost exactly
// MaxAttempts spaced dials with capped-exponential sleeps between them,
// not an immediate-retry busy-loop.
func TestDialFrameDeadListenerBacksOffNotBusyLoops(t *testing.T) {
	dials := 0
	var sleeps []time.Duration
	opts := RedialOptions{
		Base:        10 * time.Millisecond,
		Max:         80 * time.Millisecond,
		Seed:        1,
		MaxAttempts: 6,
		Sleep: func(ctx context.Context, d time.Duration) error {
			sleeps = append(sleeps, d)
			return nil
		},
		Dial: func(network, addr string) (net.Conn, error) {
			dials++
			return nil, errors.New("connection refused")
		},
	}
	_, err := DialFrame(context.Background(), "unix", "/nowhere.sock", opts)
	if err == nil {
		t.Fatal("DialFrame succeeded against a dead listener")
	}
	if dials != 6 {
		t.Fatalf("dial attempts = %d, want exactly MaxAttempts=6 (busy-loop?)", dials)
	}
	if len(sleeps) != 5 {
		t.Fatalf("sleeps between attempts = %d, want 5", len(sleeps))
	}
	for i, d := range sleeps {
		if d <= 0 {
			t.Fatalf("sleep %d is %v: immediate retry", i, d)
		}
		if max := time.Duration(float64(80*time.Millisecond) * 1.25); d > max {
			t.Fatalf("sleep %d is %v, beyond the jittered cap %v", i, d, max)
		}
	}
	// The schedule must grow toward the cap: the last sleep (capped)
	// must exceed the jittered ceiling of the first (base) delay.
	if first, last := sleeps[0], sleeps[len(sleeps)-1]; last <= first {
		t.Fatalf("backoff did not widen: first=%v last=%v", first, last)
	}
}

// A cancelled context ends the retry loop mid-backoff.
func TestDialFrameHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opts := RedialOptions{
		MaxAttempts: 100,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		},
		Dial: func(network, addr string) (net.Conn, error) {
			return nil, errors.New("connection refused")
		},
	}
	_, err := DialFrame(ctx, "unix", "/nowhere.sock", opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRedialConnSurvivesListenerRestart proves the write path: records
// framed across a connection the listener tears down mid-stream arrive
// via a reconnect, and the backend's accounting shows the resync.
func TestRedialConnSurvivesListenerRestart(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "elsa.sock")
	s, err := ListenSocket("unix", sock, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rc, err := DialFrame(context.Background(), "unix", sock, RedialOptions{
		Base: time.Millisecond, Max: 10 * time.Millisecond, Seed: 2, MaxAttempts: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	base := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	mk := func(i int) logs.Record {
		return logs.Record{Time: base.Add(time.Duration(i) * time.Second),
			Severity: logs.Info, Component: "TEST", Message: "redial", EventID: -1}
	}
	ctx := context.Background()
	if err := rc.WriteRecord(ctx, mk(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(ctx); err != nil {
		t.Fatal(err)
	}
	// Tear the producer's connection down server-side, then keep writing:
	// the first write may be swallowed by a dead socket buffer, but the
	// producer must reconnect and deliver subsequent records.
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	deadline := time.After(5 * time.Second)
	got := make(chan logs.Record, 1)
	go func() {
		rec, err := s.Next(context.Background())
		if err == nil {
			got <- rec
		}
	}()
	i := 1
	for {
		if err := rc.WriteRecord(ctx, mk(i)); err != nil {
			t.Fatalf("WriteRecord after teardown: %v", err)
		}
		i++
		select {
		case <-got:
			if rc.Redials() == 0 {
				t.Fatal("record arrived without any redial being counted")
			}
			return
		case <-deadline:
			t.Fatal("no record arrived after listener tore the connection down")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}
