package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Errorf("NextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 12} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestGrowPow2(t *testing.T) {
	buf := GrowPow2(nil, 5)
	if len(buf) != 8 {
		t.Fatalf("len = %d, want 8", len(buf))
	}
	// Reuse: a big dirty buffer shrinks in place and is zeroed.
	for i := range buf {
		buf[i] = complex(1, 1)
	}
	reused := GrowPow2(buf, 3)
	if len(reused) != 4 || &reused[0] != &buf[0] {
		t.Fatalf("expected in-place reuse to length 4, got len %d", len(reused))
	}
	for i, v := range reused {
		if v != 0 {
			t.Fatalf("reused[%d] = %v, want 0", i, v)
		}
	}
	if got := len(GrowPow2(nil, 0)); got != 1 {
		t.Fatalf("GrowPow2(nil, 0) len = %d, want 1", got)
	}
}

func TestPackReal(t *testing.T) {
	xs := []float64{1, 2, 3}
	buf := PackReal(nil, xs, 0)
	if len(buf) != 4 {
		t.Fatalf("len = %d, want 4", len(buf))
	}
	for i, v := range xs {
		if buf[i] != complex(v, 0) {
			t.Fatalf("buf[%d] = %v, want %v", i, buf[i], v)
		}
	}
	if buf[3] != 0 {
		t.Fatalf("padding not zeroed: %v", buf[3])
	}
	// minSize reserves extra zero padding past len(xs).
	if got := len(PackReal(nil, xs, 7)); got != 8 {
		t.Fatalf("minSize-padded len = %d, want 8", got)
	}
	// Dirty scratch is reused and cleared.
	scratch := []complex128{9i, 9i, 9i, 9i, 9i, 9i, 9i, 9i}
	out := PackReal(scratch, xs, 0)
	if &out[0] != &scratch[0] {
		t.Fatal("expected scratch reuse")
	}
	if out[3] != 0 {
		t.Fatalf("stale padding survived: %v", out[3])
	}
}

func TestMustTransformRoundTrip(t *testing.T) {
	xs := []float64{1, -2, 3, 0.5, -7}
	buf := PackReal(nil, xs, 0)
	MustTransform(buf)
	MustInverse(buf)
	for i, v := range xs {
		if math.Abs(real(buf[i])-v) > 1e-9 || math.Abs(imag(buf[i])) > 1e-9 {
			t.Fatalf("round trip bin %d = %v, want %v", i, buf[i], v)
		}
	}
}

func TestMustTransformPanicsOffContract(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two length")
		}
	}()
	MustTransform(make([]complex128, 3))
}

func TestTransformRejectsNonPow2(t *testing.T) {
	if err := Transform(make([]complex128, 3)); err == nil {
		t.Error("expected error for non-power-of-two length")
	}
}

func TestTransformKnownValues(t *testing.T) {
	// FFT of an impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := Transform(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse FFT bin %d = %v, want 1", i, v)
		}
	}
	// FFT of a constant is an impulse at DC.
	y := []complex128{1, 1, 1, 1}
	_ = Transform(y)
	if cmplx.Abs(y[0]-4) > 1e-12 {
		t.Errorf("DC bin = %v, want 4", y[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(y[i]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", i, y[i])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		n := 1 << (1 + r.Intn(9))
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			orig[i] = x[i]
		}
		if err := Transform(x); err != nil {
			return false
		}
		if err := Inverse(x); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 256
	x := make([]complex128, n)
	timeEnergy := 0.0
	for i := range x {
		v := rng.NormFloat64()
		x[i] = complex(v, 0)
		timeEnergy += v * v
	}
	_ = Transform(x)
	freqEnergy := 0.0
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Errorf("Parseval violated: time %v vs freq %v", timeEnergy, freqEnergy)
	}
}

func TestPeriodogramDetectsTone(t *testing.T) {
	n := 512
	xs := make([]float64, n)
	// Period 16 samples -> bin n/16 = 32 in a length-512 spectrum.
	for i := range xs {
		xs[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/16)
	}
	spec := Periodogram(xs)
	bin, power := PeakFrequency(spec)
	if bin != 32 {
		t.Errorf("peak bin = %d, want 32", bin)
	}
	if power <= 0 {
		t.Error("peak power should be positive")
	}
	if sf := SpectralFlatness(spec); sf > 0.1 {
		t.Errorf("tone spectral flatness = %v, want near 0", sf)
	}
}

func TestPeriodogramNoiseIsFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	if sf := SpectralFlatness(Periodogram(xs)); sf < 0.4 {
		t.Errorf("white noise spectral flatness = %v, want near 1", sf)
	}
}

func TestPeriodogramEdgeCases(t *testing.T) {
	if Periodogram(nil) != nil {
		t.Error("empty periodogram should be nil")
	}
	if bin, _ := PeakFrequency([]float64{1}); bin != -1 {
		t.Error("single-bin spectrum has no non-DC peak")
	}
	if sf := SpectralFlatness([]float64{1}); sf != 1 {
		t.Errorf("degenerate flatness = %v, want 1", sf)
	}
}

func TestAutocorrelationPeriodic(t *testing.T) {
	n := 600
	xs := make([]float64, n)
	for i := range xs {
		if i%20 == 0 {
			xs[i] = 1
		}
	}
	ac := Autocorrelation(xs, 100)
	if math.Abs(ac[0]-1) > 1e-9 {
		t.Fatalf("lag0 = %v, want 1", ac[0])
	}
	if ac[20] < 0.8 {
		t.Errorf("ac at true period = %v, want near 1", ac[20])
	}
	if ac[10] > 0.3 {
		t.Errorf("ac at half period = %v, want near 0", ac[10])
	}
}

func TestAutocorrelationConstant(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 5}
	ac := Autocorrelation(xs, 3)
	if ac[0] != 1 {
		t.Errorf("lag0 = %v, want 1 even for zero variance", ac[0])
	}
	for lag := 1; lag <= 3; lag++ {
		if ac[lag] != 0 {
			t.Errorf("constant series lag %d = %v, want 0", lag, ac[lag])
		}
	}
}

func TestAutocorrelationClampsLag(t *testing.T) {
	xs := []float64{1, 2, 3}
	ac := Autocorrelation(xs, 10)
	if len(ac) != 3 {
		t.Errorf("len = %d, want clamped to 3", len(ac))
	}
	if Autocorrelation(nil, 5) != nil {
		t.Error("empty input should yield nil")
	}
	if Autocorrelation(xs, -1) != nil {
		t.Error("negative maxLag should yield nil")
	}
}

func BenchmarkTransform4096(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		_ = Transform(buf)
	}
}
