// Package fft implements the radix-2 fast Fourier transform and the
// spectral utilities (periodogram, autocorrelation) that the signal module
// uses to recognise periodic event types.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// GrowPow2 returns a zeroed complex buffer whose length is the smallest
// power of two >= n, reusing buf's capacity when it suffices. Callers that
// keep the returned slice as scratch state amortize the allocation away;
// the length is a power of two by construction, so the buffer is always
// valid input for MustTransform/MustInverse.
func GrowPow2(buf []complex128, n int) []complex128 {
	size := NextPow2(n)
	if cap(buf) >= size {
		buf = buf[:size]
		for i := range buf {
			buf[i] = 0
		}
		return buf
	}
	return make([]complex128, size)
}

// PackReal packs the real series xs into the real parts of a zero-padded
// power-of-two complex buffer of length NextPow2(max(len(xs), minSize)),
// reusing buf's capacity when possible. minSize lets correlation callers
// reserve extra zero padding so the circular convolution never wraps.
func PackReal(buf []complex128, xs []float64, minSize int) []complex128 {
	if minSize < len(xs) {
		minSize = len(xs)
	}
	buf = GrowPow2(buf, minSize)
	for i, v := range xs {
		buf[i] = complex(v, 0)
	}
	return buf
}

// MustTransform is Transform for buffers whose length is a power of two by
// construction (GrowPow2/PackReal output). It panics on any other length —
// a programming error, not an input condition — so call sites carry no
// error path.
func MustTransform(x []complex128) {
	if err := Transform(x); err != nil {
		panic(err)
	}
}

// MustInverse is Inverse under the same power-of-two-by-construction
// contract as MustTransform.
func MustInverse(x []complex128) {
	if err := Inverse(x); err != nil {
		panic(err)
	}
}

// Transform computes the in-place iterative radix-2 FFT of x. It returns an
// error unless len(x) is a power of two.
func Transform(x []complex128) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// Inverse computes the in-place inverse FFT of x (power-of-two length).
func Inverse(x []complex128) error {
	n := len(x)
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := Transform(x); err != nil {
		return err
	}
	inv := complex(1/float64(n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
	return nil
}

// Periodogram returns the power spectrum |X_k|^2 / n of the real series xs
// for k in [0, n/2], zero-padding xs to the next power of two. The DC bin
// is computed after removing the mean so that a constant offset does not
// mask genuine periodicity.
func Periodogram(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	m := 0.0
	for _, v := range xs {
		m += v
	}
	m /= float64(len(xs))
	buf := PackReal(nil, xs, 0)
	n := len(buf)
	for i := range xs {
		buf[i] -= complex(m, 0)
	}
	MustTransform(buf)
	out := make([]float64, n/2+1)
	for k := range out {
		re, im := real(buf[k]), imag(buf[k])
		out[k] = (re*re + im*im) / float64(n)
	}
	return out
}

// PeakFrequency returns the index and power of the largest non-DC bin in a
// periodogram, or (-1, 0) when the spectrum has fewer than two bins.
func PeakFrequency(spec []float64) (bin int, power float64) {
	bin = -1
	for k := 1; k < len(spec); k++ {
		if spec[k] > power {
			bin, power = k, spec[k]
		}
	}
	return bin, power
}

// SpectralFlatness returns the ratio of geometric to arithmetic mean of the
// non-DC spectrum: near 1 for white noise, near 0 for a pure tone. Signal
// classification uses it to separate periodic from noise signals.
func SpectralFlatness(spec []float64) float64 {
	if len(spec) < 2 {
		return 1
	}
	const eps = 1e-12
	logSum, sum := 0.0, 0.0
	n := 0
	for _, p := range spec[1:] {
		logSum += math.Log(p + eps)
		sum += p + eps
		n++
	}
	geo := math.Exp(logSum / float64(n))
	arith := sum / float64(n)
	if arith == 0 {
		return 1
	}
	return geo / arith
}

// Autocorrelation returns the biased autocorrelation of xs (mean-removed,
// normalised so lag 0 equals 1) for lags 0..maxLag, computed via FFT in
// O(n log n). A zero-variance series yields an all-zero result beyond
// lag 0.
func Autocorrelation(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if n == 0 || maxLag < 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	m := 0.0
	for _, v := range xs {
		m += v
	}
	m /= float64(n)
	buf := PackReal(nil, xs, 2*n) // zero-pad to avoid circular wrap
	for i := range xs {
		buf[i] -= complex(m, 0)
	}
	MustTransform(buf)
	for i := range buf {
		re, im := real(buf[i]), imag(buf[i])
		buf[i] = complex(re*re+im*im, 0)
	}
	MustInverse(buf)
	out := make([]float64, maxLag+1)
	c0 := real(buf[0])
	if c0 <= 0 {
		out[0] = 1
		return out
	}
	for lag := 0; lag <= maxLag; lag++ {
		out[lag] = real(buf[lag]) / c0
	}
	return out
}
