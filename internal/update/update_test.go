package update

import (
	"strings"
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/topology"
)

var t0 = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

// phaseProfiles builds two BG/L variants: phase A without the disk-fault
// archetype, phase B without the node-card archetype but with a new
// disk-fault cascade — a software/hardware reconfiguration mid-life.
func phaseProfiles() (a, b gen.Profile) {
	a = gen.BlueGeneL()
	b = gen.BlueGeneL()
	diskArch := gen.FaultArchetype{
		Name: "disk", Category: "storage", MTBF: 3 * time.Hour,
		PrecursorProb: 0.9, IsFailure: true, OriginScope: topology.ScopeNode,
		Precursors: []gen.EventSpec{
			{Message: "sas phy error count d+ on enclosure d+", Component: "STORAGE",
				Severity: logs.Warning, Delay: 0},
			{Message: "raid rebuild started on array d+", Component: "STORAGE",
				Severity: logs.Severe, Delay: 40 * time.Second, Jitter: 0.1},
		},
		Final: gen.EventSpec{Message: "raid array d+ failed unrecoverable", Component: "STORAGE",
			Severity: logs.Failure, Delay: 50 * time.Second, Jitter: 0.1},
	}
	// Phase B: node card archetype replaced by the disk archetype.
	var archB []gen.FaultArchetype
	for _, ar := range b.Archetypes {
		if ar.Name != "nodecard" {
			archB = append(archB, ar)
		}
	}
	b.Archetypes = append(archB, diskArch)
	return a, b
}

func hasChainWith(model *correlate.Model, org *helo.Organizer, substr string) bool {
	for _, c := range model.Chains {
		for _, it := range c.Items {
			ts := org.Templates()
			if it.Event < len(ts) && strings.Contains(ts[it.Event].String(), substr) {
				return true
			}
		}
	}
	return false
}

func TestUpdaterAdmitsAndRetires(t *testing.T) {
	profA, profB := phaseProfiles()
	dur := 5 * 24 * time.Hour
	a := gen.New(profA, 1).Generate(t0, dur)
	boundary := t0.Add(dur)
	b := gen.New(profB, 2).Generate(boundary, dur)
	org := helo.New(0)
	org.Assign(a.Records)
	org.Assign(b.Records)

	initial := correlate.Train(a.Records, t0, boundary, correlate.Hybrid, correlate.DefaultConfig())
	if !hasChainWith(initial, org, "link card power module") {
		t.Fatal("initial model missing node-card chain")
	}
	if hasChainWith(initial, org, "raid") {
		t.Fatal("initial model already has disk chain")
	}

	cfg := DefaultConfig()
	cfg.Window = 4 * 24 * time.Hour
	cfg.Interval = 24 * time.Hour
	cfg.RetireAfter = 2
	u := New(initial, cfg)

	// Feed phase B day by day.
	for day := 0; day < 5; day++ {
		dayStart := boundary.Add(time.Duration(day) * 24 * time.Hour)
		dayEnd := dayStart.Add(24 * time.Hour)
		u.Ingest(logs.Window(b.Records, dayStart, dayEnd), dayEnd)
	}

	st := u.Stats()
	if st.Rounds == 0 {
		t.Fatal("no retraining rounds ran")
	}
	if st.Added == 0 {
		t.Error("no chains admitted despite new archetype")
	}
	if st.Retired == 0 {
		t.Error("no chains retired despite archetype removal")
	}
	live := u.Model()
	if !hasChainWith(live, org, "raid") {
		t.Error("disk chain not admitted into live model")
	}
	if hasChainWith(live, org, "link card power module") {
		t.Error("stale node-card chain not retired")
	}
}

func TestUpdaterStableSystemNoChurn(t *testing.T) {
	res := gen.New(gen.BlueGeneL(), 3).Generate(t0, 8*24*time.Hour)
	org := helo.New(0)
	org.Assign(res.Records)
	cut := t0.Add(4 * 24 * time.Hour)
	train, test, _ := res.Split(cut)
	initial := correlate.Train(train, t0, cut, correlate.Hybrid, correlate.DefaultConfig())

	cfg := DefaultConfig()
	cfg.Window = 4 * 24 * time.Hour
	cfg.Interval = 24 * time.Hour
	cfg.RetireAfter = 3
	u := New(initial, cfg)
	for day := 0; day < 4; day++ {
		dayStart := cut.Add(time.Duration(day) * 24 * time.Hour)
		dayEnd := dayStart.Add(24 * time.Hour)
		u.Ingest(logs.Window(test, dayStart, dayEnd), dayEnd)
	}
	st := u.Stats()
	if st.Rounds == 0 {
		t.Fatal("no rounds ran")
	}
	// A stable system renews its core chains; churn stays low relative to
	// renewals.
	if st.Renewed == 0 {
		t.Error("no chains renewed on a stable system")
	}
	if st.Retired > st.Renewed {
		t.Errorf("more retirements (%d) than renewals (%d) on a stable system",
			st.Retired, st.Renewed)
	}
}

func TestUpdaterIntervalRespected(t *testing.T) {
	res := gen.New(gen.BlueGeneL(), 4).Generate(t0, 2*24*time.Hour)
	org := helo.New(0)
	org.Assign(res.Records)
	initial := correlate.Train(res.Records, t0, res.End, correlate.Hybrid, correlate.DefaultConfig())

	cfg := DefaultConfig()
	cfg.Interval = 24 * time.Hour
	u := New(initial, cfg)
	// First ingest only arms the clock.
	u.Ingest(nil, res.End)
	if u.Stats().Rounds != 0 {
		t.Error("retrained before interval elapsed")
	}
	u.Ingest(nil, res.End.Add(time.Hour))
	if u.Stats().Rounds != 0 {
		t.Error("retrained after one hour with a 24h interval")
	}
	u.Ingest(nil, res.End.Add(25*time.Hour))
	if u.Stats().Rounds != 1 {
		t.Errorf("rounds = %d after interval elapsed", u.Stats().Rounds)
	}
}

func TestUpdaterPreservesSeverityKnowledge(t *testing.T) {
	res := gen.New(gen.BlueGeneL(), 5).Generate(t0, 4*24*time.Hour)
	org := helo.New(0)
	org.Assign(res.Records)
	initial := correlate.Train(res.Records, t0, res.End, correlate.Hybrid, correlate.DefaultConfig())

	// Find an event known to be a failure.
	failEv := -1
	for ev, sev := range initial.Severity {
		if sev == logs.Failure {
			failEv = ev
			break
		}
	}
	if failEv < 0 {
		t.Fatal("no failure-severity event in initial model")
	}

	cfg := DefaultConfig()
	cfg.Interval = time.Hour
	cfg.Window = 24 * time.Hour
	u := New(initial, cfg)
	// Retrain on an empty window: severity knowledge must persist.
	u.Ingest(nil, res.End)
	u.Ingest(nil, res.End.Add(2*time.Hour))
	if got := u.Model().Severity[failEv]; got != logs.Failure {
		t.Errorf("severity of event %d degraded to %v", failEv, got)
	}
}
