// Package update implements the correlation-updating module the paper
// describes but could not evaluate on its ten-month logs: production
// systems drift (software upgrades, reconfigurations, new components), so
// the chain set must follow. The Updater keeps a sliding window of recent
// records, periodically retrains the correlation model on it, and merges
// the fresh chain set into the live one — refreshing chains that are still
// observed, admitting new ones, and retiring chains that have not been
// re-mined for a configurable number of rounds.
package update

import (
	"sort"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/logs"
)

// Config tunes the updater.
type Config struct {
	// Window is the sliding training window (the paper keeps two months
	// online).
	Window time.Duration
	// Interval is how often the model is retrained.
	Interval time.Duration
	// RetireAfter is how many consecutive retraining rounds a chain may
	// go unconfirmed before it is retired.
	RetireAfter int

	// Mode and Correlation configure the retraining itself.
	Mode        correlate.Mode
	Correlation correlate.Config
}

// DefaultConfig returns a conservative updating policy: retrain daily on a
// two-week window, retire after three silent rounds.
func DefaultConfig() Config {
	return Config{
		Window:      14 * 24 * time.Hour,
		Interval:    24 * time.Hour,
		RetireAfter: 3,
		Mode:        correlate.Hybrid,
		Correlation: correlate.DefaultConfig(),
	}
}

// Stats counts chain-set churn over the updater's lifetime.
type Stats struct {
	Rounds  int // retraining rounds executed
	Added   int // chains admitted
	Renewed int // chains re-confirmed
	Retired int // chains aged out
}

// Updater maintains a live correlation model over a drifting system.
// It is not safe for concurrent use.
type Updater struct {
	cfg   Config
	model *correlate.Model
	stats Stats

	history     []logs.Record // sliding window, time-sorted
	lastRetrain time.Time
	unseen      map[string]int // chain key -> consecutive unconfirmed rounds
}

// New wraps an initial model (trained offline) with an updating policy.
func New(initial *correlate.Model, cfg Config) *Updater {
	if cfg.Window <= 0 {
		cfg.Window = DefaultConfig().Window
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultConfig().Interval
	}
	if cfg.RetireAfter <= 0 {
		cfg.RetireAfter = DefaultConfig().RetireAfter
	}
	u := &Updater{cfg: cfg, model: initial, unseen: make(map[string]int)}
	for _, c := range initial.Chains {
		u.unseen[c.Key()] = 0
	}
	return u
}

// Model returns the current live model.
func (u *Updater) Model() *correlate.Model { return u.model }

// Stats returns churn counters.
func (u *Updater) Stats() Stats { return u.stats }

// Ingest appends freshly observed, event-stamped records (time-sorted)
// and retrains when the interval has elapsed. now is the stream's current
// time; it returns true when the chain set changed.
func (u *Updater) Ingest(recs []logs.Record, now time.Time) bool {
	u.history = append(u.history, recs...)
	u.trim(now)
	if u.lastRetrain.IsZero() {
		u.lastRetrain = now
		return false
	}
	if now.Sub(u.lastRetrain) < u.cfg.Interval {
		return false
	}
	u.lastRetrain = now
	return u.retrain(now)
}

// trim drops history older than the window.
func (u *Updater) trim(now time.Time) {
	cut := now.Add(-u.cfg.Window)
	i := sort.Search(len(u.history), func(k int) bool { return !u.history[k].Time.Before(cut) })
	if i > 0 {
		u.history = append(u.history[:0], u.history[i:]...)
	}
}

// retrain mines the window and merges the result into the live model.
func (u *Updater) retrain(now time.Time) bool {
	u.stats.Rounds++
	start := now.Add(-u.cfg.Window)
	if len(u.history) > 0 && u.history[0].Time.After(start) {
		start = u.history[0].Time
	}
	fresh := correlate.Train(u.history, start, now, u.cfg.Mode, u.cfg.Correlation)

	freshKeys := make(map[string]int, len(fresh.Chains))
	for i, c := range fresh.Chains {
		freshKeys[c.Key()] = i
	}

	changed := false
	// Keep live chains that are confirmed or not yet stale; refresh their
	// statistics from the fresh mining.
	var kept []correlate.Chain
	for _, c := range u.model.Chains {
		key := c.Key()
		if i, ok := freshKeys[key]; ok {
			u.unseen[key] = 0
			u.stats.Renewed++
			kept = append(kept, fresh.Chains[i])
			delete(freshKeys, key)
			continue
		}
		u.unseen[key]++
		if u.unseen[key] >= u.cfg.RetireAfter {
			u.stats.Retired++
			delete(u.unseen, key)
			changed = true
			continue
		}
		kept = append(kept, c)
	}
	// Admit new chains.
	newKeys := make([]string, 0, len(freshKeys))
	for key := range freshKeys {
		newKeys = append(newKeys, key)
	}
	sort.Strings(newKeys)
	for _, key := range newKeys {
		kept = append(kept, fresh.Chains[freshKeys[key]])
		u.unseen[key] = 0
		u.stats.Added++
		changed = true
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Key() < kept[j].Key() })

	// The live model adopts the fresh behaviour profiles (they follow the
	// system's current regime) and the merged chain set.
	merged := *fresh
	merged.Chains = kept
	merged.TrainStart = start
	merged.TrainEnd = now
	// Preserve severity knowledge for events absent from this window.
	for ev, sev := range u.model.Severity {
		if cur, ok := merged.Severity[ev]; !ok || sev > cur {
			merged.Severity[ev] = sev
		}
	}
	for ev, p := range u.model.Profiles {
		if _, ok := merged.Profiles[ev]; !ok {
			merged.Profiles[ev] = p
			merged.Thresholds[ev] = u.model.Thresholds[ev]
		}
	}
	u.model = &merged
	return changed
}
