// Package wavelet implements the discrete wavelet transforms (Haar and
// Daubechies-4) and threshold denoising that ELSA's preprocessing step uses
// to characterise the normal behaviour of each event signal, following the
// signal-analysis methodology of the authors' earlier work ("Taming of the
// Shrew", IPDPS 2012) that this paper builds on.
package wavelet

import (
	"fmt"
	"math"
)

// Kind selects the wavelet family.
type Kind int

// Supported wavelet families.
const (
	Haar Kind = iota
	Daubechies4
)

// String names the family.
func (k Kind) String() string {
	switch k {
	case Haar:
		return "haar"
	case Daubechies4:
		return "db4"
	default:
		return "unknown"
	}
}

// filters returns the scaling (low-pass) coefficients for k.
func (k Kind) filters() []float64 {
	switch k {
	case Haar:
		s := 1 / math.Sqrt2
		return []float64{s, s}
	case Daubechies4:
		// Standard D4 coefficients.
		s := 4 * math.Sqrt2
		r3 := math.Sqrt(3)
		return []float64{(1 + r3) / s, (3 + r3) / s, (3 - r3) / s, (1 - r3) / s}
	default:
		return nil
	}
}

// Forward computes a single-level DWT of xs (power-of-two length, >= filter
// length), returning the approximation and detail halves. Boundaries wrap
// periodically.
func Forward(k Kind, xs []float64) (approx, detail []float64, err error) {
	h := k.filters()
	if h == nil {
		return nil, nil, fmt.Errorf("wavelet: unknown kind %d", k)
	}
	n := len(xs)
	if n < len(h) || n%2 != 0 {
		return nil, nil, fmt.Errorf("wavelet: length %d invalid for %s (need even length >= %d)", n, k, len(h))
	}
	half := n / 2
	approx = make([]float64, half)
	detail = make([]float64, half)
	for i := 0; i < half; i++ {
		var a, d float64
		for j, hc := range h {
			idx := (2*i + j) % n
			a += hc * xs[idx]
			// Quadrature mirror: g[j] = (-1)^j h[len-1-j].
			gc := h[len(h)-1-j]
			if j%2 == 1 {
				gc = -gc
			}
			d += gc * xs[idx]
		}
		approx[i] = a
		detail[i] = d
	}
	return approx, detail, nil
}

// Inverse reconstructs a signal from single-level approximation and detail
// coefficients produced by Forward.
func Inverse(k Kind, approx, detail []float64) ([]float64, error) {
	h := k.filters()
	if h == nil {
		return nil, fmt.Errorf("wavelet: unknown kind %d", k)
	}
	if len(approx) != len(detail) {
		return nil, fmt.Errorf("wavelet: approx/detail length mismatch %d vs %d", len(approx), len(detail))
	}
	half := len(approx)
	n := 2 * half
	if n < len(h) {
		return nil, fmt.Errorf("wavelet: length %d too short for %s", n, k)
	}
	out := make([]float64, n)
	for i := 0; i < half; i++ {
		for j, hc := range h {
			idx := (2*i + j) % n
			gc := h[len(h)-1-j]
			if j%2 == 1 {
				gc = -gc
			}
			out[idx] += hc*approx[i] + gc*detail[i]
		}
	}
	return out, nil
}

// Decomposition holds a multi-level DWT: the final approximation plus the
// detail bands from coarsest to finest.
type Decomposition struct {
	Kind    Kind
	Approx  []float64
	Details [][]float64 // Details[0] is the coarsest band
	n       int
}

// Decompose performs a levels-deep DWT of xs. The input length must be even
// and divisible by 2^levels down to at least the filter length.
func Decompose(k Kind, xs []float64, levels int) (*Decomposition, error) {
	if levels < 1 {
		return nil, fmt.Errorf("wavelet: levels must be >= 1, got %d", levels)
	}
	cur := append([]float64(nil), xs...)
	details := make([][]float64, 0, levels)
	for l := 0; l < levels; l++ {
		a, d, err := Forward(k, cur)
		if err != nil {
			return nil, fmt.Errorf("wavelet: level %d: %w", l, err)
		}
		details = append(details, d)
		cur = a
	}
	// Store details coarsest-first.
	for i, j := 0, len(details)-1; i < j; i, j = i+1, j-1 {
		details[i], details[j] = details[j], details[i]
	}
	return &Decomposition{Kind: k, Approx: cur, Details: details, n: len(xs)}, nil
}

// Reconstruct inverts a Decomposition back into the time domain.
func (d *Decomposition) Reconstruct() ([]float64, error) {
	cur := append([]float64(nil), d.Approx...)
	for _, det := range d.Details {
		next, err := Inverse(d.Kind, cur, det)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// ThresholdMode selects how detail coefficients are shrunk during
// denoising.
type ThresholdMode int

// Threshold modes.
const (
	Hard ThresholdMode = iota
	Soft
)

// Denoise performs wavelet shrinkage: decompose, threshold the detail
// bands with the universal threshold (sigma * sqrt(2 ln n), sigma estimated
// from the finest band's median absolute deviation), reconstruct. It
// returns the smoothed signal that ELSA treats as the event type's "normal
// behaviour" curve.
func Denoise(k Kind, xs []float64, levels int, mode ThresholdMode) ([]float64, error) {
	dec, err := Decompose(k, xs, levels)
	if err != nil {
		return nil, err
	}
	finest := dec.Details[len(dec.Details)-1]
	sigma := medianAbs(finest) / 0.6745
	t := sigma * math.Sqrt(2*math.Log(float64(len(xs))+1))
	for _, band := range dec.Details {
		for i, c := range band {
			band[i] = shrink(c, t, mode)
		}
	}
	return dec.Reconstruct()
}

func shrink(c, t float64, mode ThresholdMode) float64 {
	a := math.Abs(c)
	if a <= t {
		return 0
	}
	if mode == Hard {
		return c
	}
	if c > 0 {
		return a - t
	}
	return -(a - t)
}

// medianAbs returns the median of |xs|; local helper kept here to avoid a
// dependency cycle with the stats package in either direction.
func medianAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := make([]float64, len(xs))
	for i, x := range xs {
		tmp[i] = math.Abs(x)
	}
	// Insertion-free selection via sort; detail bands are short.
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}
