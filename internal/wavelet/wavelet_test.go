package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestKindString(t *testing.T) {
	if Haar.String() != "haar" || Daubechies4.String() != "db4" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind name wrong")
	}
}

func TestForwardRejectsBadLength(t *testing.T) {
	if _, _, err := Forward(Haar, []float64{1}); err == nil {
		t.Error("expected error for length 1")
	}
	if _, _, err := Forward(Daubechies4, []float64{1, 2}); err == nil {
		t.Error("expected error for length < filter")
	}
	if _, _, err := Forward(Kind(99), make([]float64, 8)); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestHaarKnownValues(t *testing.T) {
	a, d, err := Forward(Haar, []float64{4, 6, 10, 12})
	if err != nil {
		t.Fatal(err)
	}
	s := math.Sqrt2
	// Haar approx = (x0+x1)/sqrt2: (4+6)/s, (10+12)/s.
	if math.Abs(a[0]-10/s) > 1e-12 || math.Abs(a[1]-22/s) > 1e-12 {
		t.Errorf("approx = %v", a)
	}
	// Haar detail with g = [h1, -h0] = (x0 - x1)/s.
	if math.Abs(math.Abs(d[0])-2/s) > 1e-12 || math.Abs(math.Abs(d[1])-2/s) > 1e-12 {
		t.Errorf("detail = %v", d)
	}
}

func TestRoundTripSingleLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, k := range []Kind{Haar, Daubechies4} {
		xs := make([]float64, 64)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		a, d, err := Forward(k, xs)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Inverse(k, a, d)
		if err != nil {
			t.Fatal(err)
		}
		if diff := maxAbsDiff(xs, back); diff > 1e-9 {
			t.Errorf("%s round trip error %v", k, diff)
		}
	}
}

func TestRoundTripMultiLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		xs := make([]float64, 128)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		for _, k := range []Kind{Haar, Daubechies4} {
			dec, err := Decompose(k, xs, 3)
			if err != nil {
				return false
			}
			back, err := dec.Reconstruct()
			if err != nil {
				return false
			}
			if maxAbsDiff(xs, back) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestEnergyPreservation(t *testing.T) {
	// Orthonormal transforms preserve energy.
	rng := rand.New(rand.NewSource(33))
	xs := make([]float64, 256)
	e := 0.0
	for i := range xs {
		xs[i] = rng.NormFloat64()
		e += xs[i] * xs[i]
	}
	for _, k := range []Kind{Haar, Daubechies4} {
		a, d, err := Forward(k, xs)
		if err != nil {
			t.Fatal(err)
		}
		e2 := 0.0
		for i := range a {
			e2 += a[i]*a[i] + d[i]*d[i]
		}
		if math.Abs(e-e2) > 1e-8*e {
			t.Errorf("%s energy %v -> %v", k, e, e2)
		}
	}
}

func TestDecomposeValidation(t *testing.T) {
	if _, err := Decompose(Haar, make([]float64, 16), 0); err == nil {
		t.Error("expected error for levels < 1")
	}
	// 6 -> 3: second level has odd length.
	if _, err := Decompose(Haar, make([]float64, 6), 2); err == nil {
		t.Error("expected error when a level has odd length")
	}
}

func TestInverseValidation(t *testing.T) {
	if _, err := Inverse(Haar, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected mismatch error")
	}
	if _, err := Inverse(Kind(99), []float64{1}, []float64{1}); err == nil {
		t.Error("expected unknown-kind error")
	}
}

func TestDenoiseRemovesNoiseKeepsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n := 512
	clean := make([]float64, n)
	noisy := make([]float64, n)
	for i := range clean {
		clean[i] = 10 * math.Sin(2*math.Pi*float64(i)/64)
		noisy[i] = clean[i] + rng.NormFloat64()*0.8
	}
	den, err := Denoise(Daubechies4, noisy, 4, Hard)
	if err != nil {
		t.Fatal(err)
	}
	mseNoisy, mseDen := 0.0, 0.0
	for i := range clean {
		dn := noisy[i] - clean[i]
		dd := den[i] - clean[i]
		mseNoisy += dn * dn
		mseDen += dd * dd
	}
	if mseDen >= mseNoisy {
		t.Errorf("denoising did not reduce error: %v >= %v", mseDen, mseNoisy)
	}
}

func TestDenoiseHardVsSoft(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	xs := make([]float64, 128)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	// A strong transient guarantees some detail coefficients survive the
	// threshold, where hard and soft shrinkage must disagree.
	xs[40] += 50
	hard, err := Denoise(Haar, xs, 2, Hard)
	if err != nil {
		t.Fatal(err)
	}
	soft, err := Denoise(Haar, xs, 2, Soft)
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(hard, soft) == 0 {
		t.Error("hard and soft thresholding should differ on noise")
	}
}

func TestShrink(t *testing.T) {
	if shrink(0.5, 1, Hard) != 0 || shrink(0.5, 1, Soft) != 0 {
		t.Error("values under threshold should vanish")
	}
	if shrink(2, 1, Hard) != 2 {
		t.Error("hard shrink should keep value")
	}
	if shrink(2, 1, Soft) != 1 {
		t.Error("soft shrink should subtract threshold")
	}
	if shrink(-2, 1, Soft) != -1 {
		t.Error("soft shrink should be odd-symmetric")
	}
}
