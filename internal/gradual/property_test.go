package gradual

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randItemset builds a random well-formed itemset (delay 0 first, sorted,
// distinct events).
func randItemset(r *rand.Rand) Itemset {
	n := 2 + r.Intn(5)
	items := make([]Item, n)
	delay := 0
	used := map[int]bool{}
	for i := 0; i < n; i++ {
		ev := r.Intn(50)
		for used[ev] {
			ev = r.Intn(50)
		}
		used[ev] = true
		items[i] = Item{Event: ev, Delay: delay}
		delay += 1 + r.Intn(20)
	}
	return Itemset{Items: items}
}

func TestSubPatternReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		s := randItemset(r)
		return subPattern(&s, &s, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSubPatternSuffixesAreSubPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		s := randItemset(r)
		if s.Size() < 3 {
			return true
		}
		// Any contiguous re-anchored sub-chain must be a sub-pattern.
		lo := r.Intn(s.Size() - 1)
		hi := lo + 2 + r.Intn(s.Size()-lo-1)
		if hi > s.Size() {
			hi = s.Size()
		}
		sub := Itemset{Items: append([]Item(nil), s.Items[lo:hi]...)}
		base := sub.Items[0].Delay
		for i := range sub.Items {
			sub.Items[i].Delay -= base
		}
		return subPattern(&sub, &s, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestMergeProducesWellFormedItems(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		prefix := randItemset(r)
		if prefix.Size() < 2 {
			return true
		}
		// Two siblings: same items except the last.
		a := Itemset{Items: append([]Item(nil), prefix.Items...)}
		b := Itemset{Items: append([]Item(nil), prefix.Items[:prefix.Size()-1]...)}
		b.Items = append(b.Items, Item{Event: 100 + r.Intn(50), Delay: r.Intn(60)})
		items, ok := merge(a, b)
		if !ok {
			return true
		}
		if items[0].Delay != 0 {
			return false
		}
		for i := 1; i < len(items); i++ {
			if items[i].Delay < items[i-1].Delay {
				return false
			}
		}
		return len(items) == a.Size()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestMaximalKeepsAtLeastLargest(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		var sets []Itemset
		n := 1 + r.Intn(8)
		for i := 0; i < n; i++ {
			sets = append(sets, randItemset(r))
		}
		kept := maximal(sets, 1)
		if len(kept) == 0 || len(kept) > len(sets) {
			return false
		}
		// The largest input size must survive.
		maxIn, maxOut := 0, 0
		for _, s := range sets {
			if s.Size() > maxIn {
				maxIn = s.Size()
			}
		}
		for _, s := range kept {
			if s.Size() > maxOut {
				maxOut = s.Size()
			}
		}
		return maxOut == maxIn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestMaximalIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		var sets []Itemset
		for i := 0; i < 1+r.Intn(6); i++ {
			sets = append(sets, randItemset(r))
		}
		once := maximal(sets, 1)
		twice := maximal(once, 1)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i].Key() != twice[i].Key() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestKeyIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		a := randItemset(r)
		b := randItemset(r)
		sameItems := len(a.Items) == len(b.Items)
		if sameItems {
			for i := range a.Items {
				if a.Items[i] != b.Items[i] {
					sameItems = false
					break
				}
			}
		}
		return (a.Key() == b.Key()) == sameItems
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}
