// Package gradual implements the data-mining half of the hybrid approach:
// a GRITE-style level-wise gradual itemset miner adapted exactly as the
// paper describes (Section III.C). Signals are binarised on their
// outliers, items are (event, delay) pairs, the first tree level is seeded
// with the 2-pair correlations from the signal cross-correlation function,
// siblings are joined level by level, only the ">=" direction is searched,
// and the Mann-Whitney test decides which correlations are statistically
// significant.
package gradual

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/elsa-hpc/elsa/internal/sig"
	"github.com/elsa-hpc/elsa/internal/stats"
)

// Item is the paper's gradual item (S_i, theta_i): an event type plus its
// delay, in samples, relative to the itemset's first event.
type Item struct {
	Event int
	Delay int
}

// Itemset is a gradual itemset of cardinality >= 2, ordered by delay (the
// first item always has delay 0).
type Itemset struct {
	Items      []Item
	Support    int     // occurrences of the full pattern
	Confidence float64 // Support / occurrences of the first event
	PValue     float64 // Mann-Whitney significance of the pattern
}

// Size returns the number of items.
func (s *Itemset) Size() int { return len(s.Items) }

// Span returns the delay, in samples, between the first and last item —
// the pattern's total lead window.
func (s *Itemset) Span() int {
	if len(s.Items) == 0 {
		return 0
	}
	return s.Items[len(s.Items)-1].Delay
}

// First returns the triggering event id.
func (s *Itemset) First() int { return s.Items[0].Event }

// Last returns the terminal item (the predicted event).
func (s *Itemset) Last() Item { return s.Items[len(s.Items)-1] }

// Key returns a canonical string identity for deduplication.
func (s *Itemset) Key() string {
	var b strings.Builder
	for i, it := range s.Items {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d@%d", it.Event, it.Delay)
	}
	return b.String()
}

// Config tunes the miner.
type Config struct {
	MinSupport     int     // minimum pattern occurrences
	MinConfidence  float64 // minimum Support / first-event occurrences
	MaxLevel       int     // largest itemset size grown
	DelayTolerance int     // slack, in samples, when matching a delay
	Alpha          float64 // Mann-Whitney significance level
	Horizon        int     // total samples in the analysed window
	MaxCandidates  int     // per-level candidate cap (0 = unlimited)
}

// DefaultConfig returns the mining parameters used by the experiments.
func DefaultConfig(horizon int) Config {
	return Config{
		MinSupport:     3,
		MinConfidence:  0.25,
		MaxLevel:       12,
		DelayTolerance: 1,
		// Dozens to hundreds of candidates are tested per run; the level
		// accounts for that multiplicity so ~1%-grade coincidences do not
		// regularly survive as chains.
		Alpha:         0.002,
		Horizon:       horizon,
		MaxCandidates: 20000,
	}
}

// Mine grows itemsets level by level from the cross-correlation seed pairs
// and returns the maximal frequent significant itemsets, sorted by
// decreasing support then key. trains maps event id to its sorted outlier
// sample indices.
func Mine(trains sig.SpikeTrains, seeds []sig.PairCorrelation, cfg Config) []Itemset {
	level := seedLevel(trains, seeds, cfg)
	kept := append([]Itemset(nil), level...)
	for depth := 2; depth < cfg.MaxLevel && len(level) > 1; depth++ {
		cands := join(level, cfg)
		if len(cands) == 0 {
			break
		}
		next := Evaluate(trains, cands, cfg)
		if len(next) == 0 {
			break
		}
		kept = append(kept, next...)
		level = next
	}
	return refineAll(trains, maximal(kept, cfg.DelayTolerance), cfg)
}

// evalScratch holds the per-worker reusable buffers for candidate scoring
// and delay refinement: the hit/background indicator vectors of the
// Mann-Whitney test and the offset scan's working slice. Scoring thousands
// of candidates recycles three allocations instead of making three per
// candidate. Not safe for concurrent use; each worker owns one. The zero
// value is ready to use.
type evalScratch struct {
	hits    []float64
	bg      []float64
	offsets []int
}

// refineAll re-estimates every itemset's delays as the median observed
// offset and re-scores it. The cross-correlation seeding is density-based
// and biased low on skewed delay distributions; anchoring each item at the
// empirical median recentres both the online match window and the forecast
// failure time. Itemsets are independent, so they refine on parallel
// workers; results land in per-input slots and are merged in input order,
// keeping the output bit-identical to a sequential pass.
func refineAll(trains sig.SpikeTrains, sets []Itemset, cfg Config) []Itemset {
	refined := make([]Itemset, len(sets))
	keep := make([]bool, len(sets))
	bits := sig.IndexTrains(trains)
	parallelEach(len(sets), func(i int, sc *evalScratch) {
		s := sets[i]
		items := refineDelays(trains, s.Items, cfg.DelayTolerance, sc)
		if r, ok := score(trains, bits, items, cfg, sc); ok {
			refined[i], keep[i] = r, true
		} else if r, ok := score(trains, bits, s.Items, cfg, sc); ok {
			// Refinement degraded the pattern (rare); keep the original.
			refined[i], keep[i] = r, true
		}
	})
	out := make([]Itemset, 0, len(sets))
	for i, ok := range keep {
		if ok {
			out = append(out, refined[i])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// parallelEach runs fn(i) for i in [0, n) on NumCPU workers, each owning
// one evalScratch for the duration.
func parallelEach(n int, fn func(i int, sc *evalScratch)) {
	if n == 0 {
		return
	}
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc evalScratch
			for i := range next {
				fn(i, &sc)
			}
		}()
	}
	wg.Wait()
}

// refineDelays returns a copy of items with each delay replaced by the
// median offset observed from the first event's occurrences. The offset
// scan reuses the scratch's working slice across items.
func refineDelays(trains sig.SpikeTrains, items []Item, tol int, sc *evalScratch) []Item {
	first := trains[items[0].Event]
	refined := append([]Item(nil), items...)
	for k := 1; k < len(refined); k++ {
		it := refined[k]
		train := trains[it.Event]
		w := sig.DelayTolerance(it.Delay, tol)
		offsets := scanOffsets(sc.offsets[:0], train, first, it.Delay, w)
		if len(offsets) > 0 {
			sort.Ints(offsets)
			refined[k].Delay = offsets[len(offsets)/2]
		}
		sc.offsets = offsets[:0]
	}
	sort.Slice(refined, func(i, j int) bool {
		if refined[i].Delay != refined[j].Delay {
			return refined[i].Delay < refined[j].Delay
		}
		return refined[i].Event < refined[j].Event
	})
	if base := refined[0].Delay; base != 0 {
		for i := range refined {
			refined[i].Delay -= base
		}
	}
	return refined
}

// seedLevel converts cross-correlation pairs into evaluated 2-itemsets.
// This is the hybrid step: instead of GRITE's full first level over all
// attributes, only the pairs the fast signal-analysis pass found are
// explored, which is what makes the mining tractable online.
func seedLevel(trains sig.SpikeTrains, seeds []sig.PairCorrelation, cfg Config) []Itemset {
	cands := make([][]Item, 0, len(seeds))
	for _, p := range seeds {
		cands = append(cands, []Item{{Event: p.A, Delay: 0}, {Event: p.B, Delay: p.Delay}})
	}
	return Evaluate(trains, cands, cfg)
}

// join builds level-(L+1) candidates by merging sibling itemsets that
// share their first L-1 items, mirroring GRITE's tree join. Sibling
// groups are independent, so they join on parallel workers (the multicore
// gradual mining of the paper's reference [3]); results are concatenated
// in deterministic group order before global deduplication.
func join(level []Itemset, cfg Config) [][]Item {
	groups := make(map[string][]Itemset)
	for _, s := range level {
		prefix := s.Items[:len(s.Items)-1]
		var b strings.Builder
		for _, it := range prefix {
			fmt.Fprintf(&b, "%d@%d|", it.Event, it.Delay)
		}
		groups[b.String()] = append(groups[b.String()], s)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	perGroup := make([][][]Item, len(keys))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for gi, k := range keys {
		wg.Add(1)
		go func(gi int, g []Itemset) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var local [][]Item
			for i := 0; i < len(g); i++ {
				for j := i + 1; j < len(g); j++ {
					if cand, ok := merge(g[i], g[j]); ok {
						local = append(local, cand)
					}
				}
			}
			perGroup[gi] = local
		}(gi, groups[k])
	}
	wg.Wait()

	seen := make(map[string]bool)
	var out [][]Item
	for _, local := range perGroup {
		for _, cand := range local {
			key := itemsKey(cand)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, cand)
			if cfg.MaxCandidates > 0 && len(out) >= cfg.MaxCandidates {
				return out
			}
		}
	}
	return out
}

// merge combines two siblings into a candidate one longer, ordered by
// delay then event id. Itemsets whose last items name the same event never
// merge.
func merge(a, b Itemset) ([]Item, bool) {
	la, lb := a.Last(), b.Last()
	if la.Event == lb.Event {
		return nil, false
	}
	items := append([]Item(nil), a.Items...)
	items = append(items, lb)
	sort.Slice(items, func(i, j int) bool {
		if items[i].Delay != items[j].Delay {
			return items[i].Delay < items[j].Delay
		}
		return items[i].Event < items[j].Event
	})
	// Re-anchor so the first delay is 0 (ordering can change the head).
	base := items[0].Delay
	if base != 0 {
		for i := range items {
			items[i].Delay -= base
		}
	}
	return items, true
}

func itemsKey(items []Item) string {
	var b strings.Builder
	for _, it := range items {
		fmt.Fprintf(&b, "%d@%d|", it.Event, it.Delay)
	}
	return b.String()
}

// Evaluate counts support for each candidate pattern in parallel and keeps
// the frequent, confident, significant ones. Besides being the miner's
// inner step it is exported for the signal-only baseline, which scores its
// cross-correlation pairs as standalone 2-item chains.
func Evaluate(trains sig.SpikeTrains, cands [][]Item, cfg Config) []Itemset {
	if len(cands) == 0 {
		return nil
	}
	out := make([]Itemset, len(cands))
	keep := make([]bool, len(cands))
	bits := sig.IndexTrains(trains)
	parallelEach(len(cands), func(i int, sc *evalScratch) {
		if s, ok := score(trains, bits, cands[i], cfg, sc); ok {
			out[i] = s
			keep[i] = true
		}
	})
	var kept []Itemset
	for i, ok := range keep {
		if ok {
			kept = append(kept, out[i])
		}
	}
	return kept
}

// Rescore re-evaluates previously mined itemsets against fresh trains:
// the incremental refresh path re-scores the live chain set without
// re-walking the candidate tree, keeping an itemset exactly when the new
// trains still support it. Output follows refineAll's deterministic
// (support desc, key) order.
func Rescore(trains sig.SpikeTrains, sets []Itemset, cfg Config) []Itemset {
	cands := make([][]Item, len(sets))
	for i := range sets {
		cands[i] = sets[i].Items
	}
	out := Evaluate(trains, cands, cfg)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// score evaluates one candidate: support, confidence and Mann-Whitney
// significance against background probes. The hit and background
// indicator vectors come from the worker's scratch; MannWhitney copies
// what it needs, so reuse across candidates is safe.
func score(trains sig.SpikeTrains, bits sig.BitTrains, items []Item, cfg Config, sc *evalScratch) (Itemset, bool) {
	first := trains[items[0].Event]
	if len(first) == 0 {
		return Itemset{}, false
	}
	support := 0
	hits := sc.hits[:0]
	for _, t := range first {
		if matchesAt(trains, bits, items, t, cfg.DelayTolerance) {
			support++
			hits = append(hits, 1)
		} else {
			hits = append(hits, 0)
		}
	}
	sc.hits = hits[:0]
	if support < cfg.MinSupport {
		return Itemset{}, false
	}
	conf := float64(support) / float64(len(first))
	if conf < cfg.MinConfidence {
		return Itemset{}, false
	}
	p, bg := significance(trains, bits, items, hits, cfg, sc)
	if p >= cfg.Alpha {
		return Itemset{}, false
	}
	// Wide long-lag windows can hit busy follower trains by chance; a
	// real correlation must fire at least twice the background rate.
	if bg > 0 && conf < 2*bg {
		return Itemset{}, false
	}
	return Itemset{
		Items:      append([]Item(nil), items...),
		Support:    support,
		Confidence: conf,
		PValue:     p,
	}, true
}

// scanOffsets collects, for each occurrence t of the first event, the
// offset of the nearest occurrence of the follower train to t + delay
// within +/-w, appending into dst (the caller's reusable scratch). This is
// the inner loop of refineAll's delay refinement: it runs once per item of
// every surviving itemset, over every trigger occurrence.
//
//elsa:hotpath
func scanOffsets(dst []int, train, first []int, delay, w int) []int {
	for _, t := range first {
		want := t + delay
		i := sort.SearchInts(train, want-w)
		best, bestDist, found := 0, w+1, false
		for ; i < len(train) && train[i] <= want+w; i++ {
			if d := abs(train[i] - want); d < bestDist {
				best, bestDist, found = train[i]-t, d, true
			}
		}
		if found {
			dst = append(dst, best) //nolint:elsahotpath // amortized: dst is the worker's reusable offsets scratch
		}
	}
	return dst
}

// matchesAt reports whether every non-first item of the pattern has an
// occurrence at t + delay, within the delay-proportional tolerance. The
// bit-packed occupancy index answers each window probe in O(1) word
// operations; events too sparse to index fall back to binary search.
//
//elsa:hotpath
func matchesAt(trains sig.SpikeTrains, bits sig.BitTrains, items []Item, t, tol int) bool {
	for _, it := range items[1:] {
		want := t + it.Delay
		w := sig.DelayTolerance(it.Delay, tol)
		if bt, ok := bits[it.Event]; ok {
			if !bt.AnyIn(want-w, want+w) {
				return false
			}
			continue
		}
		train := trains[it.Event]
		i := sort.SearchInts(train, want-w)
		if i >= len(train) || train[i] > want+w {
			return false
		}
	}
	return true
}

// significance runs the Mann-Whitney test comparing the pattern indicator
// at trigger times (hits) against the indicator at evenly spaced
// background probe times, returning the p-value and the background match
// rate. A low p-value means followers co-occur with the trigger far more
// often than with arbitrary instants.
func significance(trains sig.SpikeTrains, bits sig.BitTrains, items []Item, hits []float64, cfg Config, sc *evalScratch) (p, background float64) {
	if cfg.Horizon <= 0 {
		return 0, 0 // no background to compare against; accept
	}
	probes := 4 * len(hits)
	if probes < 40 {
		probes = 40
	}
	if probes > 400 {
		probes = 400
	}
	stride := cfg.Horizon / probes
	if stride < 1 {
		stride = 1
	}
	bg := sc.bg[:0]
	bgHits := 0.0
	for t := stride / 2; t < cfg.Horizon; t += stride {
		if matchesAt(trains, bits, items, t, cfg.DelayTolerance) {
			bg = append(bg, 1)
			bgHits++
		} else {
			bg = append(bg, 0)
		}
	}
	sc.bg = bg[:0]
	rate := 0.0
	if len(bg) > 0 {
		rate = bgHits / float64(len(bg))
	}
	return stats.MannWhitney(hits, bg).P, rate
}

// maximal removes itemsets that are sub-patterns of another kept itemset
// (same events at compatible relative delays), so the chain-length
// statistics reflect the full sequences the system extracts.
func maximal(in []Itemset, tol int) []Itemset {
	// Work on a copy: callers keep their slice order.
	sets := append([]Itemset(nil), in...)
	sort.Slice(sets, func(i, j int) bool {
		if sets[i].Size() != sets[j].Size() {
			return sets[i].Size() > sets[j].Size()
		}
		if sets[i].Support != sets[j].Support {
			return sets[i].Support > sets[j].Support
		}
		return sets[i].Key() < sets[j].Key()
	})
	var kept []Itemset
	for _, s := range sets {
		sub := false
		for i := range kept {
			// A superset only absorbs a sub-pattern when it explains a
			// comparable share of the occurrences: a rare coincidental
			// extension must not erase a frequent, confident chain.
			if kept[i].Support*10 >= s.Support*7 && subPattern(&s, &kept[i], tol) {
				sub = true
				break
			}
		}
		if !sub {
			kept = append(kept, s)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Support != kept[j].Support {
			return kept[i].Support > kept[j].Support
		}
		return kept[i].Key() < kept[j].Key()
	})
	return kept
}

// subPattern reports whether every item of sub appears in super at a
// consistent relative delay (within tolerance).
func subPattern(sub, super *Itemset, tol int) bool {
	if sub.Size() > super.Size() {
		return false
	}
	// Try aligning sub's first item to each occurrence of the same event
	// in super.
	for _, anchor := range super.Items {
		if anchor.Event != sub.Items[0].Event {
			continue
		}
		ok := true
		for _, it := range sub.Items {
			found := false
			want := anchor.Delay + it.Delay
			w := sig.DelayTolerance(want, tol)
			for _, su := range super.Items {
				if su.Event == it.Event && abs(su.Delay-want) <= w {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
