package gradual

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/elsa-hpc/elsa/internal/sig"
	"github.com/elsa-hpc/elsa/internal/stats"
)

// The functions below are frozen, allocation-per-call copies of the
// refinement/scoring path as it stood before the parallel fast path. The
// equivalence tests compare the scratch-reusing parallel implementations
// against them bit for bit.

func referenceRefineAll(trains sig.SpikeTrains, sets []Itemset, cfg Config) []Itemset {
	out := make([]Itemset, 0, len(sets))
	for _, s := range sets {
		items := referenceRefineDelays(trains, s.Items, cfg.DelayTolerance)
		if r, ok := referenceScore(trains, items, cfg); ok {
			out = append(out, r)
		} else if r, ok := referenceScore(trains, s.Items, cfg); ok {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

func referenceRefineDelays(trains sig.SpikeTrains, items []Item, tol int) []Item {
	first := trains[items[0].Event]
	refined := append([]Item(nil), items...)
	for k := 1; k < len(refined); k++ {
		it := refined[k]
		train := trains[it.Event]
		w := sig.DelayTolerance(it.Delay, tol)
		var offsets []int
		for _, t := range first {
			want := t + it.Delay
			i := sort.SearchInts(train, want-w)
			best, bestDist, found := 0, w+1, false
			for ; i < len(train) && train[i] <= want+w; i++ {
				if d := abs(train[i] - want); d < bestDist {
					best, bestDist, found = train[i]-t, d, true
				}
			}
			if found {
				offsets = append(offsets, best)
			}
		}
		if len(offsets) > 0 {
			sort.Ints(offsets)
			refined[k].Delay = offsets[len(offsets)/2]
		}
	}
	sort.Slice(refined, func(i, j int) bool {
		if refined[i].Delay != refined[j].Delay {
			return refined[i].Delay < refined[j].Delay
		}
		return refined[i].Event < refined[j].Event
	})
	if base := refined[0].Delay; base != 0 {
		for i := range refined {
			refined[i].Delay -= base
		}
	}
	return refined
}

func referenceScore(trains sig.SpikeTrains, items []Item, cfg Config) (Itemset, bool) {
	first := trains[items[0].Event]
	if len(first) == 0 {
		return Itemset{}, false
	}
	support := 0
	hits := make([]float64, 0, len(first))
	for _, t := range first {
		if matchesAt(trains, sig.IndexTrains(trains), items, t, cfg.DelayTolerance) {
			support++
			hits = append(hits, 1)
		} else {
			hits = append(hits, 0)
		}
	}
	if support < cfg.MinSupport {
		return Itemset{}, false
	}
	conf := float64(support) / float64(len(first))
	if conf < cfg.MinConfidence {
		return Itemset{}, false
	}
	p, bg := referenceSignificance(trains, items, hits, cfg)
	if p >= cfg.Alpha {
		return Itemset{}, false
	}
	if bg > 0 && conf < 2*bg {
		return Itemset{}, false
	}
	return Itemset{
		Items:      append([]Item(nil), items...),
		Support:    support,
		Confidence: conf,
		PValue:     p,
	}, true
}

func referenceSignificance(trains sig.SpikeTrains, items []Item, hits []float64, cfg Config) (p, background float64) {
	if cfg.Horizon <= 0 {
		return 0, 0
	}
	probes := 4 * len(hits)
	if probes < 40 {
		probes = 40
	}
	if probes > 400 {
		probes = 400
	}
	stride := cfg.Horizon / probes
	if stride < 1 {
		stride = 1
	}
	bg := make([]float64, 0, probes)
	bgHits := 0.0
	for t := stride / 2; t < cfg.Horizon; t += stride {
		if matchesAt(trains, sig.IndexTrains(trains), items, t, cfg.DelayTolerance) {
			bg = append(bg, 1)
			bgHits++
		} else {
			bg = append(bg, 0)
		}
	}
	rate := 0.0
	if len(bg) > 0 {
		rate = bgHits / float64(len(bg))
	}
	return stats.MannWhitney(hits, bg).P, rate
}

// randomMiningTrains builds spike trains with a few genuine cascades over
// background noise, so the refinement path sees both keepers and rejects.
func randomMiningTrains(rng *rand.Rand) (sig.SpikeTrains, int) {
	horizon := 5000 + rng.Intn(5000)
	n := 4 + rng.Intn(8)
	trains := make(sig.SpikeTrains, n)
	var anchors []int
	for t := rng.Intn(400); t < horizon; t += 200 + rng.Intn(400) {
		anchors = append(anchors, t)
	}
	for id := 1; id <= n; id++ {
		set := map[int]bool{}
		delay := (id - 1) * (3 + rng.Intn(4))
		for _, a := range anchors {
			if rng.Intn(5) == 0 {
				continue // drop some occurrences
			}
			t := a + delay + rng.Intn(3) - 1
			if t >= 0 && t < horizon {
				set[t] = true
			}
		}
		for k := 0; k < 5+rng.Intn(10); k++ {
			set[rng.Intn(horizon)] = true
		}
		train := make([]int, 0, len(set))
		for t := range set {
			train = append(train, t)
		}
		sort.Ints(train)
		trains[id] = train
	}
	return trains, horizon
}

// TestRefineAllMatchesReference proves the parallel scratch-reusing
// refinement produces bit-identical output to the frozen sequential
// pre-change implementation; under -race it also checks the worker pool.
func TestRefineAllMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 15; trial++ {
		trains, horizon := randomMiningTrains(rng)
		cfg := DefaultConfig(horizon)
		seeds := sig.AllPairs(trains, sig.CrossCorrConfig{
			MaxLag: 60, MinCount: 2, MinScore: 0.1, Tolerance: 1,
		})
		sets := seedLevel(trains, seeds, cfg)
		if cands := join(sets, cfg); len(cands) > 0 {
			sets = append(sets, Evaluate(trains, cands, cfg)...)
		}
		got := refineAll(trains, sets, cfg)
		want := referenceRefineAll(trains, sets, cfg)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: refineAll diverged\n got=%v\nwant=%v", trial, got, want)
		}
	}
}

// TestEvaluateMatchesReference checks the scratch-reusing Evaluate against
// per-candidate reference scoring, in candidate order.
func TestEvaluateMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(977))
	for trial := 0; trial < 15; trial++ {
		trains, horizon := randomMiningTrains(rng)
		cfg := DefaultConfig(horizon)
		var cands [][]Item
		ids := make([]int, 0, len(trains))
		for id := range trains {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for i := 0; i < len(ids); i++ {
			for j := 0; j < len(ids); j++ {
				if i == j {
					continue
				}
				cands = append(cands, []Item{
					{Event: ids[i], Delay: 0},
					{Event: ids[j], Delay: 3 + rng.Intn(20)},
				})
			}
		}
		got := Evaluate(trains, cands, cfg)
		var want []Itemset
		for _, c := range cands {
			if s, ok := referenceScore(trains, c, cfg); ok {
				want = append(want, s)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Evaluate diverged\n got=%v\nwant=%v", trial, got, want)
		}
	}
}
