package gradual

import (
	"math/rand"
	"testing"

	"github.com/elsa-hpc/elsa/internal/sig"
)

// chainTrains builds spike trains where events 1 -> 2 -> 3 fire in a chain
// with the given delays, plus an unrelated event 9.
func chainTrains(n int, d2, d3 int) sig.SpikeTrains {
	rng := rand.New(rand.NewSource(71))
	t := sig.SpikeTrains{}
	var s1, s2, s3, s9 []int
	for i := 0; i < n; i++ {
		base := i*997 + rng.Intn(5)
		s1 = append(s1, base)
		s2 = append(s2, base+d2)
		s3 = append(s3, base+d3)
		s9 = append(s9, i*1013+37)
	}
	t[1], t[2], t[3], t[9] = s1, s2, s3, s9
	return t
}

func seedsFor(trains sig.SpikeTrains) []sig.PairCorrelation {
	return sig.AllPairs(trains, sig.DefaultCrossCorrConfig())
}

func TestMineRecoversChain(t *testing.T) {
	trains := chainTrains(40, 6, 10)
	cfg := DefaultConfig(50000)
	sets := Mine(trains, seedsFor(trains), cfg)
	if len(sets) == 0 {
		t.Fatal("no itemsets mined")
	}
	// The maximal chain {1@0, 2@6, 3@10} must be present.
	found := false
	for _, s := range sets {
		if s.Size() == 3 && s.First() == 1 && s.Last().Event == 3 && s.Last().Delay == 10 {
			found = true
			if s.Confidence < 0.8 {
				t.Errorf("chain confidence = %v, want high", s.Confidence)
			}
			if s.PValue >= cfg.Alpha {
				t.Errorf("chain p-value = %v, want < alpha", s.PValue)
			}
		}
	}
	if !found {
		for _, s := range sets {
			t.Logf("got %s support=%d conf=%.2f", s.Key(), s.Support, s.Confidence)
		}
		t.Fatal("3-chain not recovered")
	}
}

func TestMineExcludesUnrelatedEvent(t *testing.T) {
	trains := chainTrains(40, 6, 10)
	sets := Mine(trains, seedsFor(trains), DefaultConfig(50000))
	for _, s := range sets {
		for _, it := range s.Items {
			if it.Event == 9 {
				t.Errorf("unrelated event 9 appears in %s", s.Key())
			}
		}
	}
}

func TestMineMaximalSuppressesSubChains(t *testing.T) {
	trains := chainTrains(40, 6, 10)
	sets := Mine(trains, seedsFor(trains), DefaultConfig(50000))
	for _, s := range sets {
		if s.Size() == 2 && s.First() == 1 && s.Last().Event == 2 {
			t.Errorf("sub-chain %s survived maximality filter", s.Key())
		}
	}
}

func TestMineMinSupport(t *testing.T) {
	trains := chainTrains(2, 6, 10) // only two occurrences
	cfg := DefaultConfig(50000)
	cfg.MinSupport = 3
	sets := Mine(trains, seedsFor(trains), cfg)
	if len(sets) != 0 {
		t.Errorf("low-support patterns mined: %d", len(sets))
	}
}

func TestMineEmptyInputs(t *testing.T) {
	cfg := DefaultConfig(1000)
	if sets := Mine(sig.SpikeTrains{}, nil, cfg); len(sets) != 0 {
		t.Error("mining nothing should yield nothing")
	}
}

func TestItemsetAccessors(t *testing.T) {
	s := Itemset{Items: []Item{{Event: 4, Delay: 0}, {Event: 7, Delay: 5}, {Event: 2, Delay: 9}}}
	if s.Size() != 3 || s.Span() != 9 || s.First() != 4 {
		t.Errorf("accessors wrong: size=%d span=%d first=%d", s.Size(), s.Span(), s.First())
	}
	if s.Last().Event != 2 {
		t.Errorf("Last = %+v", s.Last())
	}
	if s.Key() != "4@0|7@5|2@9" {
		t.Errorf("Key = %q", s.Key())
	}
}

func TestMergeReanchorsDelays(t *testing.T) {
	a := Itemset{Items: []Item{{Event: 1, Delay: 0}, {Event: 2, Delay: 5}}}
	b := Itemset{Items: []Item{{Event: 1, Delay: 0}, {Event: 3, Delay: 2}}}
	items, ok := merge(a, b)
	if !ok {
		t.Fatal("merge failed")
	}
	if items[0].Delay != 0 {
		t.Errorf("first delay = %d, want 0", items[0].Delay)
	}
	if len(items) != 3 {
		t.Fatalf("merged size = %d", len(items))
	}
	// Order: 1@0, 3@2, 2@5.
	if items[1].Event != 3 || items[1].Delay != 2 || items[2].Event != 2 || items[2].Delay != 5 {
		t.Errorf("merged items = %+v", items)
	}
}

func TestMergeRejectsSameLastEvent(t *testing.T) {
	a := Itemset{Items: []Item{{Event: 1, Delay: 0}, {Event: 2, Delay: 5}}}
	b := Itemset{Items: []Item{{Event: 1, Delay: 0}, {Event: 2, Delay: 7}}}
	if _, ok := merge(a, b); ok {
		t.Error("merge of same last event should fail")
	}
}

func TestSubPattern(t *testing.T) {
	super := Itemset{Items: []Item{{1, 0}, {2, 6}, {3, 10}}}
	sub := Itemset{Items: []Item{{2, 0}, {3, 4}}} // 2 then 3, 4 apart
	if !subPattern(&sub, &super, 1) {
		t.Error("shifted sub-chain not recognised")
	}
	other := Itemset{Items: []Item{{2, 0}, {3, 8}}} // wrong relative delay
	if subPattern(&other, &super, 1) {
		t.Error("wrong-delay chain accepted as sub-pattern")
	}
	bigger := Itemset{Items: []Item{{1, 0}, {2, 6}, {3, 10}, {4, 12}}}
	if subPattern(&bigger, &super, 1) {
		t.Error("larger pattern cannot be a sub-pattern")
	}
}

func TestSignificanceRejectsCoincidence(t *testing.T) {
	// Two dense unrelated trains: almost any delay matches sometimes, but
	// matches at trigger times are no more common than at probe times.
	rng := rand.New(rand.NewSource(72))
	var s1, s2 []int
	last1, last2 := 0, 0
	for i := 0; i < 300; i++ {
		last1 += 1 + rng.Intn(20)
		last2 += 1 + rng.Intn(20)
		s1 = append(s1, last1)
		s2 = append(s2, last2)
	}
	trains := sig.SpikeTrains{1: s1, 2: s2}
	cfg := DefaultConfig(last1 + 100)
	cfg.MinConfidence = 0 // let support pass; significance must reject
	items := []Item{{Event: 1, Delay: 0}, {Event: 2, Delay: 5}}
	if s, ok := score(trains, sig.IndexTrains(trains), items, cfg, new(evalScratch)); ok {
		t.Errorf("coincidental pattern accepted: support=%d conf=%.2f p=%.4f",
			s.Support, s.Confidence, s.PValue)
	}
}

func TestMineDeterministic(t *testing.T) {
	trains := chainTrains(30, 4, 9)
	seeds := seedsFor(trains)
	cfg := DefaultConfig(40000)
	a := Mine(trains, seeds, cfg)
	b := Mine(trains, seeds, cfg)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() || a[i].Support != b[i].Support {
			t.Fatalf("itemset %d differs: %s vs %s", i, a[i].Key(), b[i].Key())
		}
	}
}

func TestLongChainRecovered(t *testing.T) {
	// A 5-event chain with distinct gaps.
	rng := rand.New(rand.NewSource(73))
	delays := []int{0, 3, 7, 12, 20}
	trains := sig.SpikeTrains{}
	for ev, d := range delays {
		var s []int
		for i := 0; i < 35; i++ {
			s = append(s, i*1000+d+rng.Intn(2))
		}
		trains[ev] = s
	}
	cfg := DefaultConfig(40000)
	sets := Mine(trains, seedsFor(trains), cfg)
	best := 0
	for _, s := range sets {
		if s.Size() > best {
			best = s.Size()
		}
	}
	if best < 5 {
		t.Errorf("longest chain = %d, want 5", best)
	}
}
