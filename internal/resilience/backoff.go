package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes capped, jittered exponential retry delays: attempt n
// (0-based) sleeps min(Base<<n, Max), scaled by a uniform jitter factor
// in [1-Jitter/2, 1+Jitter/2]. It is the one backoff schedule shared by
// every retry loop in the system — supervisor stage restarts, fleet
// shard handoffs, producer-side socket redials — so "capped jittered
// exponential" means the same thing everywhere and a seed reproduces
// the same schedule in tests.
//
// The zero value is not usable; construct with NewBackoff. Delay is safe
// for concurrent use.
type Backoff struct {
	base, max time.Duration
	jitter    float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff returns a schedule with the given base and cap. Non-positive
// base/max and out-of-range jitter select the supervision defaults
// (DefaultBaseBackoff, DefaultMaxBackoff, DefaultJitter); the same seed
// reproduces the same jitter sequence.
func NewBackoff(base, max time.Duration, jitter float64, seed int64) *Backoff {
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	if max <= 0 {
		max = DefaultMaxBackoff
	}
	if jitter <= 0 {
		jitter = DefaultJitter
	}
	if jitter > 1 {
		jitter = 1
	}
	return &Backoff{
		base:   base,
		max:    max,
		jitter: jitter,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Delay returns the jittered delay for a retry attempt (0-based). Each
// call consumes one value from the jitter stream.
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.base
	for i := 0; i < attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	b.mu.Lock()
	u := b.rng.Float64()
	b.mu.Unlock()
	scale := 1 - b.jitter/2 + b.jitter*u
	return time.Duration(float64(d) * scale)
}
