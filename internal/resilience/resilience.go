// Package resilience supervises the online pipeline's stage bodies so a
// fault inside one stage degrades the monitor instead of killing it. It
// provides the three classic supervision mechanisms, composed per stage:
//
//   - a panic barrier (Do / Recover) that converts a stage-body panic
//     into an accounted failure while the stream keeps flowing;
//   - a restart loop (Run) for goroutine-hosted stages, re-entering the
//     stage loop after a jittered, capped exponential backoff that is
//     context-aware (a cancelled run never sleeps out its backoff);
//   - a circuit breaker that trips the stage into degraded/bypass mode
//     after MaxFailures panics inside Window, half-opening again after
//     Cooldown so a healed stage can close the breaker with one clean
//     invocation.
//
// The supervisor is deliberately clock- and rand-injectable: chaos tests
// drive it with a virtual clock and a fixed seed, so every breaker trip
// and backoff schedule in the suite is reproducible.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Health is a stage's supervision state.
type Health int32

const (
	// Healthy: the breaker is closed and the stage body runs normally.
	Healthy Health = iota
	// Restarting: the stage loop panicked and is sleeping out a backoff.
	Restarting
	// Degraded: the breaker is open; stage bodies are bypassed until a
	// half-open probe succeeds.
	Degraded
)

// String renders the health state for stage-counter output.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "ok"
	case Restarting:
		return "restarting"
	case Degraded:
		return "degraded"
	default:
		return fmt.Sprintf("health(%d)", int32(h))
	}
}

// ErrTripped is returned (wrapped) by Run when the circuit breaker opens:
// the stage exhausted its failure budget and must not be restarted again.
var ErrTripped = errors.New("circuit breaker tripped")

// Policy tunes one stage's supervision.
type Policy struct {
	// MaxFailures is how many panics within Window trip the breaker.
	// <= 0 selects DefaultMaxFailures.
	MaxFailures int
	// Window is the sliding window the failure budget covers. <= 0
	// selects DefaultWindow.
	Window time.Duration
	// Cooldown is how long an open breaker waits before half-opening to
	// probe the stage with one real invocation. <= 0 selects
	// DefaultCooldown.
	Cooldown time.Duration
	// BaseBackoff/MaxBackoff bound the exponential restart backoff of
	// Run: attempt n sleeps min(BaseBackoff<<n, MaxBackoff), jittered.
	// <= 0 selects the defaults.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter is the fraction of the backoff randomised away (0..1): the
	// sleep is d * (1 - Jitter/2 + Jitter*u) for uniform u. Negative
	// values select DefaultJitter; 0 keeps the default too (use a tiny
	// positive value for truly jitterless backoff — lockstep restarts
	// are almost never what a fleet wants).
	Jitter float64
	// Seed seeds the supervisor's private jitter source; the same seed
	// reproduces the same backoff schedule.
	Seed int64
	// Clock injects the time source consulted by the failure window and
	// cooldown logic. nil selects the wall clock.
	Clock func() time.Time
}

// Supervision defaults.
const (
	DefaultMaxFailures = 5
	DefaultWindow      = time.Minute
	DefaultCooldown    = 30 * time.Second
	DefaultBaseBackoff = 5 * time.Millisecond
	DefaultMaxBackoff  = 2 * time.Second
	DefaultJitter      = 0.5
)

// DefaultPolicy returns the supervision parameters the pipeline uses.
func DefaultPolicy() Policy {
	return Policy{
		MaxFailures: DefaultMaxFailures,
		Window:      DefaultWindow,
		Cooldown:    DefaultCooldown,
		BaseBackoff: DefaultBaseBackoff,
		MaxBackoff:  DefaultMaxBackoff,
		Jitter:      DefaultJitter,
	}
}

// normalised fills policy defaults in place.
func (p Policy) normalised() Policy {
	if p.MaxFailures <= 0 {
		p.MaxFailures = DefaultMaxFailures
	}
	if p.Window <= 0 {
		p.Window = DefaultWindow
	}
	if p.Cooldown <= 0 {
		p.Cooldown = DefaultCooldown
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultBaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxBackoff
	}
	if p.Jitter <= 0 {
		p.Jitter = DefaultJitter
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Clock == nil {
		p.Clock = time.Now
	}
	return p
}

// Stats is a point-in-time snapshot of a supervisor's health counters.
type Stats struct {
	Panics    int64  // stage-body panics recovered (incl. Fail calls)
	Restarts  int64  // stage-loop restarts performed by Run
	Bypassed  int64  // invocations skipped while the breaker was open
	Trips     int64  // times the breaker opened (incl. failed probes)
	Probes    int64  // half-open probe invocations admitted
	Health    Health // current breaker/loop state
	LastPanic string // rendered value of the most recent panic ("" if none)
}

// Supervisor guards one pipeline stage. All methods are safe for
// concurrent use, though each stage body is expected to be invoked from
// one goroutine at a time (the pipeline's stage-per-goroutine layout).
//
// The breaker cycle is a declared typestate protocol: Allow may admit a
// half-open probe (ready->probing), OK closes it (probing->ready), and
// Fail settles back to ready with the failure charged.
//
//elsa:state ready probing
type Supervisor struct {
	name string
	pol  Policy

	mu        sync.Mutex
	failures  []time.Time // panic times inside the current window
	trippedAt time.Time
	probing   bool // a half-open probe invocation is in flight

	bo *Backoff

	health    atomic.Int32
	panics    atomic.Int64
	restarts  atomic.Int64
	bypassed  atomic.Int64
	trips     atomic.Int64
	probes    atomic.Int64
	lastPanic atomic.Value // string
}

// New returns a supervisor for the named stage.
func New(name string, pol Policy) *Supervisor {
	pol = pol.normalised()
	return &Supervisor{
		name: name,
		pol:  pol,
		bo:   NewBackoff(pol.BaseBackoff, pol.MaxBackoff, pol.Jitter, pol.Seed),
	}
}

// Name returns the supervised stage's name.
func (s *Supervisor) Name() string { return s.name }

// Health returns the current supervision state.
func (s *Supervisor) Health() Health { return Health(s.health.Load()) }

// Degraded reports whether the breaker is open (stage bodies bypassed).
func (s *Supervisor) Degraded() bool { return s.Health() == Degraded }

// Stats snapshots the supervisor's counters.
func (s *Supervisor) Stats() Stats {
	st := Stats{
		Panics:   s.panics.Load(),
		Restarts: s.restarts.Load(),
		Bypassed: s.bypassed.Load(),
		Trips:    s.trips.Load(),
		Probes:   s.probes.Load(),
		Health:   s.Health(),
	}
	if v, ok := s.lastPanic.Load().(string); ok {
		st.LastPanic = v
	}
	return st
}

// Allow reports whether the stage body should run now. With the breaker
// closed it always allows; with it open it denies until Cooldown has
// elapsed, then admits exactly one half-open probe at a time. Callers
// that are denied must apply the stage's bypass semantics (and should
// count the bypass via the return path they own).
//
//elsa:transition ready->ready ready->probing probing->probing
func (s *Supervisor) Allow() bool {
	if Health(s.health.Load()) != Degraded {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if Health(s.health.Load()) != Degraded {
		return true
	}
	if s.probing || s.pol.Clock().Sub(s.trippedAt) < s.pol.Cooldown {
		s.bypassed.Add(1)
		return false
	}
	s.probing = true
	s.probes.Add(1)
	return true
}

// Do invokes fn behind the panic barrier. It returns false when fn
// panicked; the panic has been recorded (and may have tripped the
// breaker) and must not propagate further.
func (s *Supervisor) Do(fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			s.recordPanic(r)
			ok = false
		}
	}()
	fn()
	s.OK()
	return true
}

// Recover is the deferred form of the panic barrier for callers that
// cannot afford a closure: `defer sup.Recover()` at the top of the
// guarded call, `sup.OK()` as its last statement.
func (s *Supervisor) Recover() {
	if r := recover(); r != nil {
		s.recordPanic(r)
	}
}

// OK records a successful invocation. Its only observable effect is
// closing the breaker after a successful half-open probe; on the healthy
// fast path it is one atomic load.
//
//elsa:transition probing->ready ready->ready
func (s *Supervisor) OK() {
	if Health(s.health.Load()) != Degraded {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.probing {
		s.probing = false
		s.failures = s.failures[:0]
		s.health.Store(int32(Healthy))
	}
}

// Fail records an externally observed failure of the supervised unit —
// a liveness probe that timed out, a worker that died without panicking
// through the barrier — with the same window/breaker accounting a
// recovered panic gets. The fleet coordinator uses it to charge shard
// incarnation deaths against the shard's failure budget.
//
//elsa:transition ready->ready probing->ready
func (s *Supervisor) Fail(reason string) {
	s.recordPanic(reason)
}

// recordPanic accounts one panic and trips the breaker when the failure
// budget for the window is exhausted (or a half-open probe failed).
func (s *Supervisor) recordPanic(r interface{}) {
	s.panics.Add(1)
	s.lastPanic.Store(fmt.Sprint(r))
	now := s.pol.Clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.probing {
		// The half-open probe failed: re-open for another cooldown.
		s.probing = false
		s.trippedAt = now
		s.trips.Add(1)
		s.health.Store(int32(Degraded))
		return
	}
	keep := s.failures[:0]
	for _, t := range s.failures {
		if now.Sub(t) <= s.pol.Window {
			keep = append(keep, t)
		}
	}
	s.failures = append(keep, now)
	if len(s.failures) >= s.pol.MaxFailures {
		s.trippedAt = now
		s.failures = s.failures[:0]
		s.trips.Add(1)
		s.health.Store(int32(Degraded))
	}
}

// Run executes loop under full supervision: a panic inside loop restarts
// it after a jittered exponential backoff, successive panics widen the
// backoff, and exhausting the failure budget trips the breaker and ends
// the loop with an error wrapping ErrTripped. Run returns loop's own
// return value when it completes without panicking, and ctx.Err() when
// the context ends first (including during a backoff sleep).
func (s *Supervisor) Run(ctx context.Context, loop func() error) error {
	for attempt := 0; ; attempt++ {
		err, panicked := s.guard(loop)
		if !panicked {
			return err
		}
		if s.Degraded() {
			return fmt.Errorf("resilience: stage %s: %w", s.name, ErrTripped)
		}
		s.restarts.Add(1)
		if !s.sleep(ctx, s.backoff(attempt)) {
			return ctx.Err()
		}
	}
}

// guard runs loop once behind the panic barrier.
func (s *Supervisor) guard(loop func() error) (err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			s.recordPanic(r)
			panicked = true
		}
	}()
	return loop(), false
}

// backoff computes the jittered, capped exponential delay for a restart
// attempt.
func (s *Supervisor) backoff(attempt int) time.Duration {
	return s.bo.Delay(attempt)
}

// sleep waits d out under supervision state Restarting, returning false
// when ctx ended first.
func (s *Supervisor) sleep(ctx context.Context, d time.Duration) bool {
	if Health(s.health.Load()) == Healthy {
		s.health.Store(int32(Restarting))
		defer s.health.CompareAndSwap(int32(Restarting), int32(Healthy))
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
