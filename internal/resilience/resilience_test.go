package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// virtualClock is a hand-advanced time source for deterministic breaker
// tests.
type virtualClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *virtualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *virtualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testPolicy(clk *virtualClock) Policy {
	return Policy{
		MaxFailures: 3,
		Window:      time.Minute,
		Cooldown:    30 * time.Second,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  10 * time.Microsecond,
		Seed:        1,
		Clock:       clk.now,
	}
}

func TestDoRecoversPanics(t *testing.T) {
	clk := &virtualClock{t: time.Unix(0, 0)}
	s := New("stage", testPolicy(clk))
	if ok := s.Do(func() { panic("boom") }); ok {
		t.Fatal("Do reported a panicking body as ok")
	}
	if ok := s.Do(func() {}); !ok {
		t.Fatal("Do reported a clean body as failed")
	}
	st := s.Stats()
	if st.Panics != 1 {
		t.Errorf("Panics = %d, want 1", st.Panics)
	}
	if st.LastPanic != "boom" {
		t.Errorf("LastPanic = %q, want %q", st.LastPanic, "boom")
	}
	if st.Health != Healthy {
		t.Errorf("Health = %v, want Healthy", st.Health)
	}
}

func TestBreakerTripsAfterBudgetExhausted(t *testing.T) {
	clk := &virtualClock{t: time.Unix(0, 0)}
	s := New("stage", testPolicy(clk))
	for i := 0; i < 3; i++ {
		if !s.Allow() {
			t.Fatalf("Allow denied before trip (failure %d)", i)
		}
		s.Do(func() { panic(i) })
		clk.advance(time.Second)
	}
	if !s.Degraded() {
		t.Fatal("breaker did not trip after MaxFailures panics in window")
	}
	if s.Allow() {
		t.Fatal("open breaker allowed an invocation before cooldown")
	}
	if got := s.Stats().Bypassed; got != 1 {
		t.Errorf("Bypassed = %d, want 1", got)
	}
}

func TestBreakerStaysClosedWhenFailuresSpreadPastWindow(t *testing.T) {
	clk := &virtualClock{t: time.Unix(0, 0)}
	s := New("stage", testPolicy(clk))
	for i := 0; i < 6; i++ {
		s.Do(func() { panic(i) })
		clk.advance(40 * time.Second) // only ~1.5 failures per window
	}
	if s.Degraded() {
		t.Fatal("breaker tripped although failures never clustered in one window")
	}
}

func TestHalfOpenProbeClosesBreakerOnSuccess(t *testing.T) {
	clk := &virtualClock{t: time.Unix(0, 0)}
	s := New("stage", testPolicy(clk))
	for i := 0; i < 3; i++ {
		s.Do(func() { panic(i) })
	}
	if !s.Degraded() {
		t.Fatal("breaker did not trip")
	}
	clk.advance(31 * time.Second) // past cooldown: next Allow is a probe
	if !s.Allow() {
		t.Fatal("half-open breaker denied the probe")
	}
	s.Do(func() {})
	if s.Degraded() {
		t.Fatal("successful probe did not close the breaker")
	}
	if !s.Allow() {
		t.Fatal("closed breaker denied an invocation")
	}
}

func TestHalfOpenProbeReopensOnFailure(t *testing.T) {
	clk := &virtualClock{t: time.Unix(0, 0)}
	s := New("stage", testPolicy(clk))
	for i := 0; i < 3; i++ {
		s.Do(func() { panic(i) })
	}
	clk.advance(31 * time.Second)
	if !s.Allow() {
		t.Fatal("half-open breaker denied the probe")
	}
	s.Do(func() { panic("still broken") })
	if !s.Degraded() {
		t.Fatal("failed probe did not re-open the breaker")
	}
	// A fresh cooldown applies from the failed probe.
	clk.advance(time.Second)
	if s.Allow() {
		t.Fatal("re-opened breaker allowed before the new cooldown elapsed")
	}
	clk.advance(30 * time.Second)
	if !s.Allow() {
		t.Fatal("re-opened breaker denied after the new cooldown")
	}
}

func TestRunRestartsWithBackoffThenTrips(t *testing.T) {
	clk := &virtualClock{t: time.Unix(0, 0)}
	s := New("stage", testPolicy(clk))
	calls := 0
	err := s.Run(context.Background(), func() error {
		calls++
		panic("loop bug")
	})
	if !errors.Is(err, ErrTripped) {
		t.Fatalf("err = %v, want ErrTripped", err)
	}
	// MaxFailures=3: three invocations, breaker trips on the third.
	if calls != 3 {
		t.Errorf("loop ran %d times, want 3", calls)
	}
	st := s.Stats()
	if st.Restarts != 2 {
		t.Errorf("Restarts = %d, want 2", st.Restarts)
	}
	if st.Health != Degraded {
		t.Errorf("Health = %v, want Degraded", st.Health)
	}
}

func TestRunReturnsLoopResult(t *testing.T) {
	clk := &virtualClock{t: time.Unix(0, 0)}
	s := New("stage", testPolicy(clk))
	want := errors.New("clean exit")
	if err := s.Run(context.Background(), func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	if err := s.Run(context.Background(), func() error { return nil }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}

func TestRunHonoursContextDuringBackoff(t *testing.T) {
	clk := &virtualClock{t: time.Unix(0, 0)}
	pol := testPolicy(clk)
	pol.BaseBackoff = time.Hour // only cancellation can end the sleep
	pol.MaxBackoff = time.Hour
	s := New("stage", pol)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- s.Run(ctx, func() error { panic("always") })
	}()
	time.Sleep(10 * time.Millisecond) // let the first panic land in backoff
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation during backoff")
	}
}

func TestBackoffIsJitteredCappedAndDeterministic(t *testing.T) {
	clk := &virtualClock{t: time.Unix(0, 0)}
	pol := testPolicy(clk)
	pol.BaseBackoff = time.Millisecond
	pol.MaxBackoff = 8 * time.Millisecond
	pol.Seed = 42
	a := New("a", pol)
	b := New("b", pol)
	for attempt := 0; attempt < 8; attempt++ {
		da := a.backoff(attempt)
		db := b.backoff(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed produced %v vs %v", attempt, da, db)
		}
		// Jitter 0.5 bounds the sleep in [0.75, 1.25] * capped exponential.
		if max := time.Duration(float64(pol.MaxBackoff) * 1.25); da > max {
			t.Fatalf("attempt %d: backoff %v exceeds jittered cap %v", attempt, da, max)
		}
		if da <= 0 {
			t.Fatalf("attempt %d: non-positive backoff %v", attempt, da)
		}
	}
}

func TestRecoverDeferredForm(t *testing.T) {
	clk := &virtualClock{t: time.Unix(0, 0)}
	s := New("stage", testPolicy(clk))
	func() {
		defer s.Recover()
		panic("deferred barrier")
	}()
	if got := s.Stats().Panics; got != 1 {
		t.Errorf("Panics = %d, want 1", got)
	}
}

func TestBackoffHelperCappedJitteredDeterministic(t *testing.T) {
	a := NewBackoff(time.Millisecond, 8*time.Millisecond, 0.5, 42)
	b := NewBackoff(time.Millisecond, 8*time.Millisecond, 0.5, 42)
	for attempt := 0; attempt < 10; attempt++ {
		da, db := a.Delay(attempt), b.Delay(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, da, db)
		}
		if da <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", attempt, da)
		}
		if max := time.Duration(float64(8*time.Millisecond) * 1.25); da > max {
			t.Fatalf("attempt %d: delay %v exceeds jittered cap %v", attempt, da, max)
		}
	}
	// Different seeds must diverge somewhere in the schedule.
	c := NewBackoff(time.Millisecond, 8*time.Millisecond, 0.5, 43)
	same := true
	for attempt := 0; attempt < 10; attempt++ {
		if NewBackoff(time.Millisecond, 8*time.Millisecond, 0.5, 42).Delay(attempt) != c.Delay(attempt) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestFailCountsTowardBreakerWithTripsAndProbes(t *testing.T) {
	clk := &virtualClock{t: time.Unix(0, 0)}
	s := New("shard", testPolicy(clk))
	// Three external failures inside the window trip the breaker.
	for i := 0; i < 3; i++ {
		s.Fail("incarnation died")
	}
	st := s.Stats()
	if st.Health != Degraded {
		t.Fatalf("Health = %v after budget exhausted, want Degraded", st.Health)
	}
	if st.Trips != 1 {
		t.Errorf("Trips = %d, want 1", st.Trips)
	}
	if st.Panics != 3 {
		t.Errorf("Panics = %d, want 3 (Fail shares the panic accounting)", st.Panics)
	}
	// Before cooldown: denied, counted as bypassed, no probe.
	if s.Allow() {
		t.Fatal("Allow admitted work before cooldown")
	}
	// After cooldown: exactly one half-open probe admitted.
	clk.advance(31 * time.Second)
	if !s.Allow() {
		t.Fatal("Allow denied the half-open probe after cooldown")
	}
	if got := s.Stats().Probes; got != 1 {
		t.Errorf("Probes = %d, want 1", got)
	}
	// Failed probe re-opens and counts another trip.
	s.Fail("probe incarnation died")
	st = s.Stats()
	if st.Health != Degraded || st.Trips != 2 {
		t.Fatalf("after failed probe: Health=%v Trips=%d, want Degraded/2", st.Health, st.Trips)
	}
	// Successful probe closes the breaker.
	clk.advance(31 * time.Second)
	if !s.Allow() {
		t.Fatal("Allow denied the second probe")
	}
	s.OK()
	st = s.Stats()
	if st.Health != Healthy {
		t.Fatalf("Health = %v after successful probe, want Healthy", st.Health)
	}
	if st.Probes != 2 {
		t.Errorf("Probes = %d, want 2", st.Probes)
	}
}
