package elsa

import (
	"time"

	"github.com/elsa-hpc/elsa/internal/checkpoint"
)

// Checkpoint-model types, re-exported from the analytic module
// (equations 1-7 of the paper).
type (
	// CheckpointParams describes a platform: checkpoint cost C, restart
	// cost R, downtime D and MTTF.
	CheckpointParams = checkpoint.Params
	// CheckpointPredictor carries a predictor's recall and precision.
	CheckpointPredictor = checkpoint.Predictor
	// CheckpointSimResult is one simulated checkpoint-restart execution.
	CheckpointSimResult = checkpoint.SimResult
)

// PaperCheckpointParams returns the paper's platform constants (R = 5 min,
// D = 1 min) for a given checkpoint cost and MTTF.
func PaperCheckpointParams(c, mttf time.Duration) CheckpointParams {
	return checkpoint.PaperParams(c, mttf)
}

// YoungInterval returns the optimal checkpoint interval sqrt(2 C MTTF).
func YoungInterval(p CheckpointParams) time.Duration { return checkpoint.YoungInterval(p) }

// DalyInterval returns Daly's higher-order optimal interval, which
// improves on Young's formula when the checkpoint cost is not negligible
// against the MTTF.
func DalyInterval(p CheckpointParams) time.Duration { return checkpoint.DalyInterval(p) }

// Multi-level (FTI/SCR-style) checkpointing model.
type (
	// MultiLevelParams describes a two-level checkpoint scheme: cheap
	// local checkpoints covering most failures, expensive global ones for
	// the rest.
	MultiLevelParams = checkpoint.MultiLevelParams
	// MultiLevelPlan is an optimised two-level schedule.
	MultiLevelPlan = checkpoint.MultiLevelPlan
)

// OptimizeMultiLevel searches for the minimum-waste two-level schedule.
func OptimizeMultiLevel(p MultiLevelParams) MultiLevelPlan {
	return checkpoint.OptimizeMultiLevel(p)
}

// MultiLevelGain returns the relative waste reduction a predictor buys on
// the optimised two-level schedule.
func MultiLevelGain(p MultiLevelParams, pred CheckpointPredictor) float64 {
	return checkpoint.MultiLevelGain(p, pred)
}

// CheckpointWaste evaluates the waste fraction at interval T without
// prediction (equation 1).
func CheckpointWaste(p CheckpointParams, T time.Duration) float64 { return checkpoint.Waste(p, T) }

// MinCheckpointWaste is the waste at Young's interval without prediction.
func MinCheckpointWaste(p CheckpointParams) float64 { return checkpoint.MinWaste(p) }

// MinWasteWithPrediction evaluates equation (7): the minimum waste with a
// predictor of the given recall and precision.
func MinWasteWithPrediction(p CheckpointParams, pred CheckpointPredictor) float64 {
	return checkpoint.MinWasteWithPrediction(p, pred)
}

// CheckpointWasteGain returns the relative waste reduction prediction
// buys (the percentages of the paper's Table IV).
func CheckpointWasteGain(p CheckpointParams, pred CheckpointPredictor) float64 {
	return checkpoint.WasteGain(p, pred)
}

// SimulateCheckpointing runs the discrete-event checkpoint-restart
// simulator for an application needing the given amount of work.
func SimulateCheckpointing(p CheckpointParams, pred CheckpointPredictor, interval, work time.Duration, seed int64) CheckpointSimResult {
	return checkpoint.Simulate(p, pred, interval, work, seed)
}
