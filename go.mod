module github.com/elsa-hpc/elsa

go 1.22
