package elsa

import (
	"strings"
	"testing"
	"time"
)

var apiStart = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

func TestPublicAPIEndToEnd(t *testing.T) {
	log := GenerateBGL(42, apiStart, 6*24*time.Hour)
	cut := apiStart.Add(3 * 24 * time.Hour)
	train, test, truth := log.Split(cut)

	model := Train(train, apiStart, cut, DefaultTrainConfig())
	if model.Mode() != Hybrid {
		t.Errorf("Mode = %v", model.Mode())
	}
	if model.EventCount() == 0 {
		t.Fatal("no templates mined")
	}
	if len(model.Chains()) == 0 {
		t.Fatal("no chains")
	}
	if len(model.PredictiveChains()) == 0 {
		t.Fatal("no predictive chains")
	}
	if !model.TrainEnd().Equal(cut) {
		t.Errorf("TrainEnd = %v", model.TrainEnd())
	}

	result := model.Predict(test, cut, log.End)
	if len(result.Predictions) == 0 {
		t.Fatal("no predictions")
	}

	outcome := Evaluate(result, truth, DefaultMatchConfig())
	if outcome.Precision <= 0 || outcome.Recall <= 0 {
		t.Errorf("precision=%v recall=%v", outcome.Precision, outcome.Recall)
	}
	if !strings.Contains(outcome.String(), "precision") {
		t.Error("outcome rendering broken")
	}
}

func TestTrainHandlesUnsortedRecords(t *testing.T) {
	log := GenerateBGL(43, apiStart, 24*time.Hour)
	// Shuffle a copy (reverse is enough to violate order).
	recs := append([]Record(nil), log.Records...)
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		recs[i], recs[j] = recs[j], recs[i]
	}
	model := Train(recs, apiStart, log.End, DefaultTrainConfig())
	if model.EventCount() == 0 {
		t.Error("training on unsorted records failed")
	}
	// The caller's slice must not be reordered.
	if !recs[0].Time.After(recs[len(recs)-1].Time) {
		t.Error("Train mutated the caller's slice order")
	}
}

func TestEventTemplate(t *testing.T) {
	log := GenerateBGL(44, apiStart, 24*time.Hour)
	model := Train(log.Records, apiStart, log.End, DefaultTrainConfig())
	if got := model.EventTemplate(0); got == "" {
		t.Error("template 0 empty")
	}
	if got := model.EventTemplate(-1); got != "" {
		t.Errorf("negative id template = %q", got)
	}
	if got := model.EventTemplate(1 << 20); got != "" {
		t.Errorf("out-of-range template = %q", got)
	}
}

func TestLogIORoundTrip(t *testing.T) {
	log := GenerateBGL(45, apiStart, 2*time.Hour)
	var sb strings.Builder
	if err := WriteLog(&sb, log.Records); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLog(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(log.Records) {
		t.Fatalf("got %d records, want %d", len(back), len(log.Records))
	}
}

func TestFailureIORoundTrip(t *testing.T) {
	log := GenerateBGL(46, apiStart, 48*time.Hour)
	if len(log.Failures) == 0 {
		t.Fatal("no failures generated")
	}
	var sb strings.Builder
	if err := WriteFailures(&sb, log.Failures); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFailures(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(log.Failures) {
		t.Fatalf("got %d failures, want %d", len(back), len(log.Failures))
	}
	for i := range back {
		if !back[i].Time.Equal(log.Failures[i].Time) || back[i].Category != log.Failures[i].Category {
			t.Fatalf("failure %d mismatch", i)
		}
		if len(back[i].Locations) != len(log.Failures[i].Locations) {
			t.Fatalf("failure %d locations mismatch", i)
		}
	}
}

func TestReadFailuresError(t *testing.T) {
	if _, err := ReadFailures(strings.NewReader("{bad json")); err == nil {
		t.Error("bad json accepted")
	}
}

func TestPredictionIORoundTrip(t *testing.T) {
	log := GenerateBGL(48, apiStart, 5*24*time.Hour)
	cut := apiStart.Add(2 * 24 * time.Hour)
	train, test, _ := log.Split(cut)
	model := Train(train, apiStart, cut, DefaultTrainConfig())
	result := model.Predict(test, cut, log.End)
	if len(result.Predictions) == 0 {
		t.Fatal("no predictions to round-trip")
	}
	var sb strings.Builder
	if err := WritePredictions(&sb, result.Predictions); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPredictions(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(result.Predictions) {
		t.Fatalf("got %d predictions, want %d", len(back), len(result.Predictions))
	}
	for i := range back {
		a, b := back[i], result.Predictions[i]
		if !a.ExpectedAt.Equal(b.ExpectedAt) || a.ChainKey != b.ChainKey ||
			a.Trigger != b.Trigger || a.Scope != b.Scope || a.Lead != b.Lead {
			t.Fatalf("prediction %d mismatch", i)
		}
	}
	if _, err := ReadPredictions(strings.NewReader("{bad")); err == nil {
		t.Error("bad json accepted")
	}
}

func TestWorkloadAndAdviseFacade(t *testing.T) {
	m := BlueGeneLMachine()
	jobsList := GenerateWorkload(m, apiStart, apiStart.Add(24*time.Hour), DefaultWorkload())
	if len(jobsList) == 0 {
		t.Fatal("no jobs")
	}
	node := jobsList[0].Nodes[0]
	pred := Prediction{
		IssuedAt:   jobsList[0].Start.Add(time.Minute),
		ExpectedAt: jobsList[0].Start.Add(30 * time.Minute),
		Lead:       29 * time.Minute,
		Trigger:    node,
	}
	rec := Advise(m, jobsList, pred, DefaultAvoidanceConfig())
	if rec.Action == NoAction {
		t.Errorf("29-minute window on a busy node should act, got %v", rec.Action)
	}
}

func TestCheckpointFacade(t *testing.T) {
	p := PaperCheckpointParams(time.Minute, 24*time.Hour)
	if YoungInterval(p) <= 0 {
		t.Error("YoungInterval non-positive")
	}
	pred := CheckpointPredictor{Recall: 0.458, Precision: 0.912}
	gain := CheckpointWasteGain(p, pred)
	if gain <= 0.1 || gain >= 0.5 {
		t.Errorf("gain = %v for paper-level predictor", gain)
	}
	if MinWasteWithPrediction(p, pred) >= MinCheckpointWaste(p) {
		t.Error("prediction did not reduce waste")
	}
	if CheckpointWaste(p, YoungInterval(p)) != MinCheckpointWaste(p) {
		t.Error("waste at Young interval mismatch")
	}
	sim := SimulateCheckpointing(p, pred, YoungInterval(p), 30*24*time.Hour, 1)
	if sim.Waste <= 0 || sim.Failures == 0 {
		t.Errorf("sim = %+v", sim)
	}
}

func TestMultiLevelFacade(t *testing.T) {
	p := MultiLevelParams{
		C1: 10 * time.Second, C2: 2 * time.Minute,
		R1: 30 * time.Second, R2: 5 * time.Minute,
		D:    time.Minute,
		MTTF: 5 * time.Hour, LocalFraction: 0.8,
	}
	plan := OptimizeMultiLevel(p)
	if plan.T1 <= 0 || plan.K < 1 || plan.Waste <= 0 {
		t.Fatalf("plan = %+v", plan)
	}
	gain := MultiLevelGain(p, CheckpointPredictor{Recall: 0.458, Precision: 0.912})
	if gain <= 0 {
		t.Errorf("gain = %v", gain)
	}
	if DalyInterval(PaperCheckpointParams(time.Minute, time.Hour)) <= 0 {
		t.Error("Daly interval non-positive")
	}
}

func TestBootstrapFacade(t *testing.T) {
	log := GenerateBGL(49, apiStart, 5*24*time.Hour)
	cut := apiStart.Add(2 * 24 * time.Hour)
	train, test, truth := log.Split(cut)
	model := Train(train, apiStart, cut, DefaultTrainConfig())
	out := Evaluate(model.Predict(test, cut, log.End), truth, DefaultMatchConfig())
	p, r := out.Bootstrap(500, 1)
	if !p.Contains(out.Precision) {
		t.Errorf("precision CI [%v,%v] misses point estimate %v", p.Lo, p.Hi, out.Precision)
	}
	if !r.Contains(out.Recall) {
		t.Errorf("recall CI [%v,%v] misses point estimate %v", r.Lo, r.Hi, out.Recall)
	}
}

func TestParseLocationFacade(t *testing.T) {
	loc, err := ParseLocation("R00-M0-N0-C:J02-U01")
	if err != nil {
		t.Fatal(err)
	}
	if loc.String() != "R00-M0-N0-C:J02-U01" {
		t.Errorf("round trip = %q", loc)
	}
	if _, err := ParseLocation("R0x-"); err == nil {
		t.Error("bad location accepted")
	}
}

func TestMercuryGeneration(t *testing.T) {
	log := GenerateMercury(47, apiStart, 24*time.Hour)
	if len(log.Records) == 0 {
		t.Fatal("no mercury records")
	}
	if log.Profile != "mercury" {
		t.Errorf("profile = %q", log.Profile)
	}
	m := BlueGeneLMachine()
	if m.NumNodes() != 65536 {
		t.Errorf("BGL nodes = %d", m.NumNodes())
	}
}
