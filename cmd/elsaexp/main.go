// Command elsaexp regenerates the paper's tables and figures from the
// synthetic substrate.
//
// Usage:
//
//	elsaexp -all                        # full report (EXPERIMENTS.md source)
//	elsaexp -exp table3                 # one experiment
//	elsaexp -exp fig9 -train-days 5 -test-days 11 -seed 42
//	elsaexp -list                       # experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/elsa-hpc/elsa/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elsaexp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		all       = flag.Bool("all", false, "run every experiment")
		exp       = flag.String("exp", "", "run one experiment by id")
		list      = flag.Bool("list", false, "list experiment ids")
		csvDir    = flag.String("csv", "", "write per-figure CSV data files to this directory")
		trainDays = flag.Int("train-days", experiments.Full.TrainDays, "training window, days")
		testDays  = flag.Int("test-days", experiments.Full.TestDays, "test window, days")
		seed      = flag.Int64("seed", experiments.Full.Seed, "campaign seed")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return nil
	}
	sc := experiments.Scale{TrainDays: *trainDays, TestDays: *testDays, Seed: *seed}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		files := experiments.CSVFiles(sc)
		names := make([]string, 0, len(files))
		for name := range files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			path := filepath.Join(*csvDir, name)
			if err := os.WriteFile(path, []byte(files[name]), 0o644); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
		return nil
	}
	if *all {
		fmt.Print(experiments.Report(sc))
		return nil
	}
	if *exp == "" {
		return fmt.Errorf("pass -all, -list or -exp <id>")
	}
	out, err := experiments.Run(*exp, sc)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}
