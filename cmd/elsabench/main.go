// Command elsabench runs the training-path benchmark suite on a generated
// BG/L-profile log and writes the perf-trajectory point BENCH_train.json:
// ns/op, allocs/op and pair-space pruning for the seeding, mining,
// training and pipeline stages.
//
// Usage:
//
//	elsabench [-out BENCH_train.json] [-events 200] [-hours 24] [-seed 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/elsa-hpc/elsa/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elsabench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out    = flag.String("out", "BENCH_train.json", "write the JSON report to this path (- for stdout)")
		events = flag.Int("events", 200, "target number of distinct event types")
		hours  = flag.Int("hours", 24, "generated log length in hours")
		seed   = flag.Int64("seed", 0, "log generator seed")
	)
	flag.Parse()

	rep, err := bench.Run(bench.Options{
		EventTypes: *events,
		Duration:   time.Duration(*hours) * time.Hour,
		Seed:       *seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())

	if *out == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	err = rep.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", *out)
	return nil
}
