// Command elsa runs the ELSA pipeline over a log file: it splits the log
// into a training and a test window, trains the correlation model, runs
// the online predictor over the test window and reports the chains,
// predictions and (when ground truth is supplied) precision/recall.
//
// Usage:
//
//	elsa -log system.log -train-days 5 [-mode hybrid] [-truth truth.jsonl] [-chains] [-predictions]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	elsa "github.com/elsa-hpc/elsa"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "elsa:", err)
		os.Exit(1)
	}
}

// run executes one CLI invocation. It owns no globals — flags live on a
// private FlagSet and all output goes through the writers — so tests can
// call it repeatedly in one process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("elsa", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		logPath    = fs.String("log", "", "log file in canonical text format (required)")
		trainDays  = fs.Int("train-days", 5, "days of log used for training")
		modeS      = fs.String("mode", "hybrid", "correlation method: hybrid, signal or datamining")
		truthPath  = fs.String("truth", "", "ground-truth JSON lines for evaluation")
		showChains = fs.Bool("chains", false, "print the extracted correlation chains")
		showPreds  = fs.Bool("predictions", false, "print every emitted prediction")
		savePath   = fs.String("save", "", "write the trained model to this path")
		modelPath  = fs.String("model", "", "load a trained model instead of training")
		formatS    = fs.String("format", "canonical", "log format: canonical, bgl (CFDR RAS) or syslog")
		year       = fs.Int("year", 0, "year completing syslog timestamps (0 = current)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" {
		return fmt.Errorf("-log is required")
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "elsa: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "elsa: memprofile:", err)
			}
		}()
	}

	cfg := elsa.DefaultTrainConfig()
	switch *modeS {
	case "hybrid":
		cfg.Mode = elsa.Hybrid
	case "signal":
		cfg.Mode = elsa.SignalOnly
	case "datamining":
		cfg.Mode = elsa.DataMiningOnly
	default:
		return fmt.Errorf("unknown -mode %q", *modeS)
	}

	format, err := elsa.ParseLogFormat(*formatS)
	if err != nil {
		return err
	}
	f, err := os.Open(*logPath)
	if err != nil {
		return err
	}
	records, dropped, err := elsa.ReadLogFormat(f, format, *year)
	f.Close()
	if err != nil {
		return err
	}
	if dropped > 0 {
		fmt.Fprintf(stderr, "elsa: skipped %d malformed lines\n", dropped)
	}
	if len(records) == 0 {
		return fmt.Errorf("log %s is empty", *logPath)
	}
	elsa.SortRecords(records)

	start := records[0].Time.Truncate(24 * time.Hour)
	end := records[len(records)-1].Time.Add(time.Second)
	cut := start.Add(time.Duration(*trainDays) * 24 * time.Hour)
	if !cut.Before(end) {
		return fmt.Errorf("training window (%d days) covers the whole log", *trainDays)
	}

	var train, test []elsa.Record
	for _, r := range records {
		if r.Time.Before(cut) {
			train = append(train, r)
		} else {
			test = append(test, r)
		}
	}
	fmt.Fprintf(stdout, "training on %d records (%s .. %s), testing on %d records (.. %s), mode %s\n",
		len(train), start.Format(time.RFC3339), cut.Format(time.RFC3339), len(test),
		end.Format(time.RFC3339), cfg.Mode)

	var model *elsa.Model
	if *modelPath != "" {
		mf, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		model, err = elsa.LoadModel(mf)
		mf.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loaded model: %d event types, %d chains (%d predictive)\n",
			model.EventCount(), len(model.Chains()), len(model.PredictiveChains()))
	} else {
		model = elsa.Train(train, start, cut, cfg)
		fmt.Fprintf(stdout, "mined %d event types, extracted %d chains (%d predictive)\n",
			model.EventCount(), len(model.Chains()), len(model.PredictiveChains()))
	}
	if *savePath != "" {
		sf, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		err = model.Save(sf)
		if cerr := sf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "model saved to %s\n", *savePath)
	}

	if *showChains {
		for _, ch := range model.Chains() {
			fmt.Fprintf(stdout, "chain %s support=%d conf=%.2f predictive=%v\n",
				ch.Key(), ch.Support, ch.Confidence, ch.Predictive)
			for _, it := range ch.Items {
				fmt.Fprintf(stdout, "  @%-5d %s\n", it.Delay, model.EventTemplate(it.Event))
			}
		}
	}

	result := model.Predict(test, cut, end)
	st := result.Stats
	fmt.Fprintf(stdout, "online: %d predictions (%d late), %d/%d chains used, mean analysis %.1fms, worst %s\n",
		len(result.Predictions), st.LatePreds, len(st.ChainsUsed), st.ChainsLoaded,
		1000*st.Analysis.Mean(), st.MaxAnalysis.Round(time.Millisecond))
	// Batch prediction replays the streaming stage graph; show what each
	// stage saw.
	for _, sg := range st.Stages {
		fmt.Fprintf(stdout, "  stage %-9s in=%-8d out=%-8d dropped=%-6d maxqueue=%-5d wall=%s\n",
			sg.Name, sg.In, sg.Out, sg.Dropped, sg.MaxQueue, sg.Wall.Round(time.Microsecond))
	}

	if *showPreds {
		for _, p := range result.Predictions {
			fmt.Fprintf(stdout, "predict %s at %s lead=%s scope=%s trigger=%s chain=%s\n",
				model.EventTemplate(p.Event), p.ExpectedAt.Format(time.RFC3339),
				p.Lead.Round(time.Second), p.Scope, p.Trigger, p.ChainKey)
		}
	}

	if *truthPath != "" {
		tf, err := os.Open(*truthPath)
		if err != nil {
			return err
		}
		failures, err := elsa.ReadFailures(tf)
		tf.Close()
		if err != nil {
			return err
		}
		var testFailures []elsa.Failure
		for _, fl := range failures {
			if !fl.Time.Before(cut) {
				testFailures = append(testFailures, fl)
			}
		}
		outcome := elsa.Evaluate(result, testFailures, elsa.DefaultMatchConfig())
		fmt.Fprint(stdout, outcome)
	}
	return nil
}
