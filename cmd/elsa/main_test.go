package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeTestLog writes a tiny canonical log spanning a bit over 26 hours, so
// -train-days 1 leaves a ~2 hour test window. A periodic INFO heartbeat
// plus an occasional FAILURE gives training something to chew on without
// making the run slow.
func writeTestLog(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	start := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 26*6; i++ { // every 10 minutes for 26 hours
		ts := start.Add(time.Duration(i) * 10 * time.Minute)
		fmt.Fprintf(&b, "%s INFO R00-M0-N0 KERNEL heartbeat tick\n", ts.Format(time.RFC3339))
		if i%12 == 0 {
			fmt.Fprintf(&b, "%s FAILURE R00-M0-N1 NFS rpc timeout on data server\n", ts.Add(time.Minute).Format(time.RFC3339))
		}
	}
	path := filepath.Join(t.TempDir(), "test.log")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCapture(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

// TestRunProfiles checks the -cpuprofile/-memprofile plumbing: both files
// must exist and be non-empty after run returns (the heap profile is
// written by a deferred block, so this also pins the profile-at-exit
// ordering).
func TestRunProfiles(t *testing.T) {
	log := writeTestLog(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stdout, _, err := runCapture(t,
		"-log", log, "-train-days", "1", "-cpuprofile", cpu, "-memprofile", mem)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout, "online:") {
		t.Errorf("run output missing online summary:\n%s", stdout)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestRunCPUProfileError checks that an uncreatable -cpuprofile path fails
// the run instead of being silently dropped.
func TestRunCPUProfileError(t *testing.T) {
	log := writeTestLog(t)
	_, _, err := runCapture(t,
		"-log", log, "-train-days", "1", "-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"))
	if err == nil {
		t.Fatal("expected error for uncreatable cpuprofile path")
	}
}

// TestRunMemProfileError checks that an uncreatable -memprofile path is
// reported on stderr at exit without failing the run (the run's results
// already streamed out by then).
func TestRunMemProfileError(t *testing.T) {
	log := writeTestLog(t)
	_, stderr, err := runCapture(t,
		"-log", log, "-train-days", "1", "-memprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof"))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stderr, "memprofile") {
		t.Errorf("stderr missing memprofile failure notice:\n%s", stderr)
	}
}

func TestRunFlagErrors(t *testing.T) {
	log := writeTestLog(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing log", nil, "-log is required"},
		{"unknown mode", []string{"-log", log, "-train-days", "1", "-mode", "psychic"}, "unknown -mode"},
		{"unknown format", []string{"-log", log, "-train-days", "1", "-format", "csv"}, "format"},
		{"unknown flag", []string{"-log", log, "-bogus"}, "bogus"},
		{"window too long", []string{"-log", log, "-train-days", "7"}, "covers the whole log"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := runCapture(t, tc.args...)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}
