// Command elsamon is the online monitor daemon: it loads a trained model,
// tails a log stream and prints failure forecasts as soon as they fire —
// the deployment shape of the paper's online phase.
//
// Usage:
//
//	elsa -log history.log -train-days 5 -save model.json
//	tail -f /var/log/system.log | elsamon -model model.json -format syslog
//
// Besides stdin, -ingest selects a pluggable backend (package
// internal/ingest): a flat log file, a unix/TCP socket speaking
// CRC-framed records, or a segmented append-only log directory that the
// monitor can tail across segment rolls and resume by offset:
//
//	elsamon -model model.json -ingest segdir -in /var/lib/elsa/log -follow
//	elsamon -model model.json -ingest socket -listen unix:/tmp/elsa.sock
//
// Each prediction is printed as one line:
//
//	PREDICT <expected-time> lead=<window> scope=<scope> at=<trigger> event=<template>
//
// For crash resilience, -snapshot periodically persists the monitor's
// online state (atomically, via rename); after a crash or restart,
// -resume continues mid-stream from the last snapshot — no retraining,
// no re-emitted predictions:
//
//	elsamon -model model.json -snapshot mon.snap < stream
//	elsamon -model model.json -resume mon.snap < rest-of-stream
//
// With -refresh-every, the monitor periodically retrains its correlation
// chains from statistics accumulated on the live stream itself — no
// replay, no restart; refreshed chains are live for the next tick and
// ride in snapshots:
//
//	elsamon -model model.json -refresh-every 50000 < stream
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	elsa "github.com/elsa-hpc/elsa"
	"github.com/elsa-hpc/elsa/internal/ingest"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "elsamon:", err)
		os.Exit(1)
	}
}

// run executes one daemon invocation. Flags live on a private FlagSet and
// all I/O goes through the parameters, so tests drive it in-process.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("elsamon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		modelPath = fs.String("model", "", "trained model (from elsa -save) (required)")
		formatS   = fs.String("format", "canonical", "input format: canonical, bgl or syslog")
		year      = fs.Int("year", 0, "year completing syslog timestamps (0 = current)")
		showLate  = fs.Bool("late", false, "also print predictions whose window has already closed")
		snapPath  = fs.String("snapshot", "", "periodically write the monitor state to this path (atomic rename)")
		snapEvery = fs.Int("snapshot-every", 10000, "records between periodic snapshots (with -snapshot)")
		resumeP   = fs.String("resume", "", "resume the monitor from a snapshot written by -snapshot")
		ingestS   = fs.String("ingest", "", "ingest backend: file, socket or segdir (default: lines on stdin)")
		inPath    = fs.String("in", "", "input path: log file (-ingest file) or segment directory (-ingest segdir)")
		listenS   = fs.String("listen", "", "listen address as net:addr, e.g. unix:/tmp/elsa.sock or tcp:127.0.0.1:7700 (-ingest socket)")
		follow    = fs.Bool("follow", false, "with -ingest segdir: tail the directory for new records instead of stopping at the end")
		refEvery  = fs.Int("refresh-every", 0, "records between incremental retraining rounds from the live stream (0 = never)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("-model is required")
	}
	if *snapEvery <= 0 {
		return fmt.Errorf("-snapshot-every must be positive")
	}
	if *refEvery < 0 {
		return fmt.Errorf("-refresh-every must be non-negative")
	}
	format, err := elsa.ParseLogFormat(*formatS)
	if err != nil {
		return err
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := elsa.LoadModel(mf)
	mf.Close()
	if err != nil {
		return err
	}
	feed := "stdin"
	if *ingestS != "" {
		feed = "-ingest " + *ingestS
	}
	fmt.Fprintf(stderr, "elsamon: model with %d event types, %d chains loaded; waiting for records (%s)\n",
		model.EventCount(), len(model.PredictiveChains()), feed)

	var monitor *elsa.Monitor
	if *resumeP != "" {
		sf, err := os.Open(*resumeP)
		if err != nil {
			return err
		}
		monitor, err = model.ResumeMonitor(sf)
		sf.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "elsamon: resumed from %s\n", *resumeP)
	}

	if *ingestS != "" {
		if *formatS != "canonical" {
			return fmt.Errorf("-ingest backends carry canonical records; -format must stay canonical")
		}
		b, err := openBackend(*ingestS, *inPath, *listenS, *follow)
		if err != nil {
			return err
		}
		defer b.Close()
		if monitor != nil {
			if off, ok := monitor.IngestOffset(); ok {
				switch err := b.Seek(off); {
				case err == nil:
					fmt.Fprintf(stderr, "elsamon: ingest resumed at record %d\n", off.Records)
				case errors.Is(err, ingest.ErrNotSeekable):
					// A push backend cannot replay; the producer decides
					// where the resumed stream starts.
					fmt.Fprintf(stderr, "elsamon: ingest: %v; continuing from the live position\n", err)
				default:
					return fmt.Errorf("seek to snapshot offset %d: %w", off.Records, err)
				}
			}
		}
		return runBackend(b, model, monitor, stdout, stderr, *showLate, *snapPath, *snapEvery, *refEvery)
	}

	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	out := bufio.NewWriter(stdout)
	defer out.Flush()
	dropped, fed := 0, 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		rec, err := decode(line, format, *year)
		if err != nil {
			dropped++
			continue
		}
		if monitor == nil {
			// Anchor tick 0 at the first record's time.
			monitor = model.NewMonitor(rec.Time.Truncate(10 * time.Second))
		}
		preds, err := monitor.Feed(rec)
		if err != nil {
			return fmt.Errorf("elsamon: feed: %w", err)
		}
		for _, p := range preds {
			emit(out, model, p, *showLate)
		}
		out.Flush()
		fed++
		if *refEvery > 0 && fed%*refEvery == 0 {
			refresh(monitor, stderr)
		}
		if *snapPath != "" && fed%*snapEvery == 0 {
			// A failed snapshot degrades resumability, not monitoring:
			// warn and keep serving predictions.
			if err := writeSnapshot(monitor, *snapPath); err != nil {
				fmt.Fprintln(stderr, "elsamon: snapshot:", err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if monitor == nil {
		return fmt.Errorf("no records received")
	}
	if *snapPath != "" {
		// Final snapshot before Close flushes the open ticks, so a later
		// -resume continues exactly where this stream ended.
		if err := writeSnapshot(monitor, *snapPath); err != nil {
			fmt.Fprintln(stderr, "elsamon: snapshot:", err)
		}
	}
	res := monitor.Close()
	st := res.Stats
	fmt.Fprintf(stderr, "elsamon: %d records over %d ticks, %d predictions (%d late), %d undecodable lines, %d stragglers dropped\n",
		st.Messages, st.Ticks, len(res.Predictions), st.LatePreds, dropped, st.LateRecords)
	if st.QuarantinedRecords > 0 || st.DedupedRecords > 0 || st.ShedRecords > 0 || st.Degraded {
		fmt.Fprintf(stderr, "elsamon: hardening: %d quarantined, %d deduplicated, %d shed, %d degraded ticks\n",
			st.QuarantinedRecords, st.DedupedRecords, st.ShedRecords, st.DegradedTicks)
	}
	printStages(stderr, st.Stages)
	return nil
}

// openBackend builds the ingest.Backend the -ingest flag selected.
func openBackend(kind, in, listen string, follow bool) (ingest.Backend, error) {
	switch kind {
	case "file":
		if in == "" {
			return nil, fmt.Errorf("-ingest file requires -in <logfile>")
		}
		return ingest.OpenFile(in)
	case "segdir":
		if in == "" {
			return nil, fmt.Errorf("-ingest segdir requires -in <segment-dir>")
		}
		return ingest.OpenSegDir(in, ingest.SegDirOptions{Follow: follow})
	case "socket":
		network, addr, ok := strings.Cut(listen, ":")
		if !ok || network == "" || addr == "" {
			return nil, fmt.Errorf("-ingest socket requires -listen net:addr (e.g. unix:/tmp/elsa.sock)")
		}
		return ingest.ListenSocket(network, addr, 1024)
	default:
		return nil, fmt.Errorf("unknown -ingest backend %q (want file, socket or segdir)", kind)
	}
}

// runBackend drives the monitor from an ingest backend: the same feed
// loop and snapshot cadence as the stdin path, with the backend's resume
// offset riding in every snapshot so -resume can Seek back to it.
func runBackend(b ingest.Backend, model *elsa.Model, monitor *elsa.Monitor, stdout, stderr io.Writer, showLate bool, snapPath string, snapEvery, refEvery int) error {
	ctx := context.Background()
	out := bufio.NewWriter(stdout)
	defer out.Flush()
	fed := 0
	for {
		rec, err := b.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if monitor == nil {
			// Anchor tick 0 at the first record's time.
			monitor = model.NewMonitor(rec.Time.Truncate(10 * time.Second))
		}
		preds, err := monitor.Feed(rec)
		if err != nil {
			return fmt.Errorf("elsamon: feed: %w", err)
		}
		for _, p := range preds {
			emit(out, model, p, showLate)
		}
		out.Flush()
		fed++
		if refEvery > 0 && fed%refEvery == 0 {
			refresh(monitor, stderr)
		}
		if snapPath != "" && fed%snapEvery == 0 {
			monitor.SetIngestOffset(b.Offset())
			if err := writeSnapshot(monitor, snapPath); err != nil {
				fmt.Fprintln(stderr, "elsamon: snapshot:", err)
			}
		}
	}
	if monitor == nil {
		return fmt.Errorf("no records received")
	}
	if snapPath != "" {
		// Final snapshot before Close flushes the open ticks, carrying the
		// end-of-stream offset so a later -resume continues exactly here.
		monitor.SetIngestOffset(b.Offset())
		if err := writeSnapshot(monitor, snapPath); err != nil {
			fmt.Fprintln(stderr, "elsamon: snapshot:", err)
		}
	}
	res := monitor.Close()
	st := res.Stats
	bs := b.Stats()
	fmt.Fprintf(stderr, "elsamon: %d records over %d ticks, %d predictions (%d late), %d stragglers dropped\n",
		st.Messages, st.Ticks, len(res.Predictions), st.LatePreds, st.LateRecords)
	fmt.Fprintf(stderr, "elsamon: ingest: %d delivered, %d quarantined, %d resyncs, %d connections (%d aborted)\n",
		bs.Delivered, bs.Quarantined, bs.Resyncs, bs.Conns, bs.AbortedConns)
	if st.QuarantinedRecords > 0 || st.DedupedRecords > 0 || st.ShedRecords > 0 || st.Degraded {
		fmt.Fprintf(stderr, "elsamon: hardening: %d quarantined, %d deduplicated, %d shed, %d degraded ticks\n",
			st.QuarantinedRecords, st.DedupedRecords, st.ShedRecords, st.DegradedTicks)
	}
	printStages(stderr, st.Stages)
	return nil
}

// refresh runs one incremental retraining round and reports what it did.
// A round before the first tick closes is silent (nothing to retrain
// from yet).
func refresh(mon *elsa.Monitor, stderr io.Writer) {
	st := mon.Refresh()
	if st == (elsa.RefreshStats{}) {
		return
	}
	how := "rescored"
	if st.Remined {
		how = "remined"
	}
	fmt.Fprintf(stderr, "elsamon: refresh: %d dirty pairs, %d scored, %d seeds, %d chains (%s) in %s\n",
		st.Dirty, st.Scored, st.Seeds, st.Chains, how, st.Duration.Round(time.Microsecond))
}

// writeSnapshot persists the monitor state crash-consistently, with the
// same discipline ingest uses for segment rolls: written to a sibling
// temp file, fsynced, renamed over the target, then the parent directory
// fsynced so the rename itself is durable. A crash mid-write never
// truncates the previous good snapshot, and a crash right after a
// "successful" snapshot cannot roll the file back to the old state.
func writeSnapshot(mon *elsa.Monitor, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := mon.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return ingest.SyncDir(filepath.Dir(path))
}

// printStages renders the pipeline's per-stage counters, one line per
// stage in graph order, with hardening and supervision columns when the
// stage has any.
func printStages(stderr io.Writer, stages []elsa.StageStats) {
	for _, sg := range stages {
		fmt.Fprintf(stderr, "elsamon: stage %-9s in=%-8d out=%-8d dropped=%-6d maxqueue=%-5d wall=%s",
			sg.Name, sg.In, sg.Out, sg.Dropped, sg.MaxQueue, sg.Wall.Round(time.Microsecond))
		if sg.Quarantined > 0 || sg.Deduped > 0 || sg.Shed > 0 {
			fmt.Fprintf(stderr, " quarantined=%d deduped=%d shed=%d", sg.Quarantined, sg.Deduped, sg.Shed)
		}
		if sg.Health != "" {
			fmt.Fprintf(stderr, " panics=%d restarts=%d bypassed=%d trips=%d probes=%d health=%s",
				sg.Panics, sg.Restarts, sg.Bypassed, sg.Trips, sg.Probes, sg.Health)
		}
		fmt.Fprintln(stderr)
	}
}

func decode(line string, format elsa.LogFormat, year int) (elsa.Record, error) {
	recs, dropped, err := elsa.ReadLogFormat(strings.NewReader(line), format, year)
	if err != nil {
		return elsa.Record{}, err
	}
	if dropped > 0 || len(recs) != 1 {
		return elsa.Record{}, fmt.Errorf("undecodable line")
	}
	return recs[0], nil
}

func emit(out *bufio.Writer, model *elsa.Model, p elsa.Prediction, showLate bool) {
	if p.Late() && !showLate {
		return
	}
	status := "PREDICT"
	if p.Late() {
		status = "LATE"
	}
	fmt.Fprintf(out, "%s %s lead=%s scope=%s at=%s event=%s\n",
		status, p.ExpectedAt.Format(time.RFC3339), p.Lead.Round(time.Second),
		p.Scope, p.Trigger, model.EventTemplate(p.Event))
}
