// Command elsamon is the online monitor daemon: it loads a trained model,
// tails a log stream on stdin and prints failure forecasts as soon as they
// fire — the deployment shape of the paper's online phase.
//
// Usage:
//
//	elsa -log history.log -train-days 5 -save model.json
//	tail -f /var/log/system.log | elsamon -model model.json -format syslog
//
// Each prediction is printed as one line:
//
//	PREDICT <expected-time> lead=<window> scope=<scope> at=<trigger> event=<template>
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	elsa "github.com/elsa-hpc/elsa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elsamon:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelPath = flag.String("model", "", "trained model (from elsa -save) (required)")
		formatS   = flag.String("format", "canonical", "input format: canonical, bgl or syslog")
		year      = flag.Int("year", 0, "year completing syslog timestamps (0 = current)")
		showLate  = flag.Bool("late", false, "also print predictions whose window has already closed")
	)
	flag.Parse()
	if *modelPath == "" {
		return fmt.Errorf("-model is required")
	}
	format, err := elsa.ParseLogFormat(*formatS)
	if err != nil {
		return err
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := elsa.LoadModel(mf)
	mf.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "elsamon: model with %d event types, %d chains loaded; waiting for records on stdin\n",
		model.EventCount(), len(model.PredictiveChains()))

	var monitor *elsa.Monitor
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	dropped := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		rec, err := decode(line, format, *year)
		if err != nil {
			dropped++
			continue
		}
		if monitor == nil {
			// Anchor tick 0 at the first record's time.
			monitor = model.NewMonitor(rec.Time.Truncate(10 * time.Second))
		}
		for _, p := range monitor.Feed(rec) {
			emit(out, model, p, *showLate)
		}
		out.Flush()
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if monitor == nil {
		return fmt.Errorf("no records received")
	}
	res := monitor.Close()
	st := res.Stats
	fmt.Fprintf(os.Stderr, "elsamon: %d records over %d ticks, %d predictions (%d late), %d undecodable lines, %d stragglers dropped\n",
		st.Messages, st.Ticks, len(res.Predictions), st.LatePreds, dropped, st.LateRecords)
	printStages(st.Stages)
	return nil
}

// printStages renders the pipeline's per-stage counters, one line per
// stage in graph order.
func printStages(stages []elsa.StageStats) {
	for _, sg := range stages {
		fmt.Fprintf(os.Stderr, "elsamon: stage %-9s in=%-8d out=%-8d dropped=%-6d maxqueue=%-5d wall=%s\n",
			sg.Name, sg.In, sg.Out, sg.Dropped, sg.MaxQueue, sg.Wall.Round(time.Microsecond))
	}
}

func decode(line string, format elsa.LogFormat, year int) (elsa.Record, error) {
	recs, dropped, err := elsa.ReadLogFormat(strings.NewReader(line), format, year)
	if err != nil {
		return elsa.Record{}, err
	}
	if dropped > 0 || len(recs) != 1 {
		return elsa.Record{}, fmt.Errorf("undecodable line")
	}
	return recs[0], nil
}

func emit(out *bufio.Writer, model *elsa.Model, p elsa.Prediction, showLate bool) {
	if p.Late() && !showLate {
		return
	}
	status := "PREDICT"
	if p.Late() {
		status = "LATE"
	}
	fmt.Fprintf(out, "%s %s lead=%s scope=%s at=%s event=%s\n",
		status, p.ExpectedAt.Format(time.RFC3339), p.Lead.Round(time.Second),
		p.Scope, p.Trigger, model.EventTemplate(p.Event))
}
