package main

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	elsa "github.com/elsa-hpc/elsa"
)

var testStart = time.Date(2006, 1, 2, 15, 0, 0, 0, time.UTC)

var shared struct {
	once   sync.Once
	blob   string // saved model JSON
	stream []elsa.Record
}

// fixture trains a model on half a synthetic BGL log (once per process),
// saves it to a per-test path and returns the held-out half.
func fixture(t *testing.T) (modelPath string, stream []elsa.Record) {
	t.Helper()
	shared.once.Do(func() {
		log := elsa.GenerateBGL(91, testStart, 4*24*time.Hour)
		cut := testStart.Add(2 * 24 * time.Hour)
		train, test, _ := log.Split(cut)
		model := elsa.Train(train, testStart, cut, elsa.DefaultTrainConfig())
		var sb strings.Builder
		if err := model.Save(&sb); err != nil {
			t.Fatal(err)
		}
		shared.blob, shared.stream = sb.String(), test
	})
	modelPath = filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(modelPath, []byte(shared.blob), 0o644); err != nil {
		t.Fatal(err)
	}
	return modelPath, shared.stream
}

func canonical(t *testing.T, recs []elsa.Record) string {
	t.Helper()
	var sb strings.Builder
	if err := elsa.WriteLog(&sb, recs); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRunRequiresModel(t *testing.T) {
	var out, errw strings.Builder
	if err := run(nil, strings.NewReader(""), &out, &errw); err == nil {
		t.Fatal("run without -model succeeded")
	}
}

func TestRunMonitorsStream(t *testing.T) {
	modelPath, stream := fixture(t)
	var out, errw strings.Builder
	err := run([]string{"-model", modelPath, "-late"},
		strings.NewReader(canonical(t, stream)), &out, &errw)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errw.String())
	}
	if !strings.Contains(errw.String(), "records over") {
		t.Errorf("summary line missing from stderr:\n%s", errw.String())
	}
	if !strings.Contains(errw.String(), "stage source") {
		t.Errorf("stage table missing from stderr:\n%s", errw.String())
	}
	if out.Len() == 0 {
		t.Error("no predictions printed; fixture too quiet to exercise the monitor")
	}
}

// TestRunSnapshotResume is the daemon-level crash-resume test: kill the
// monitor after half the stream (run one exits, leaving its -snapshot
// file), start a second process with -resume over the rest, and the two
// processes' combined prediction output must equal an uninterrupted
// run's, line for line.
func TestRunSnapshotResume(t *testing.T) {
	modelPath, stream := fixture(t)
	snap := filepath.Join(t.TempDir(), "mon.snap")
	half := len(stream) / 2

	var whole, errw strings.Builder
	if err := run([]string{"-model", modelPath, "-late"},
		strings.NewReader(canonical(t, stream)), &whole, &errw); err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	var first, second strings.Builder
	errw.Reset()
	if err := run([]string{"-model", modelPath, "-late", "-snapshot", snap, "-snapshot-every", "50"},
		strings.NewReader(canonical(t, stream[:half])), &first, &errw); err != nil {
		t.Fatalf("first incarnation: %v\nstderr:\n%s", err, errw.String())
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot file not written: %v", err)
	}
	if _, err := os.Stat(snap + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp snapshot left behind (rename not atomic?): %v", err)
	}
	errw.Reset()
	if err := run([]string{"-model", modelPath, "-late", "-resume", snap},
		strings.NewReader(canonical(t, stream[half:])), &second, &errw); err != nil {
		t.Fatalf("resumed incarnation: %v\nstderr:\n%s", err, errw.String())
	}
	if !strings.Contains(errw.String(), "resumed from") {
		t.Errorf("resume not announced on stderr:\n%s", errw.String())
	}

	if got, want := first.String()+second.String(), whole.String(); got != want {
		t.Errorf("combined prediction output differs from the uninterrupted run:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRunRejectsBadSnapshotFlags(t *testing.T) {
	modelPath, _ := fixture(t)
	var out, errw strings.Builder
	err := run([]string{"-model", modelPath, "-snapshot-every", "0"},
		strings.NewReader(""), &out, &errw)
	if err == nil {
		t.Error("non-positive -snapshot-every accepted")
	}
	err = run([]string{"-model", modelPath, "-resume", filepath.Join(t.TempDir(), "missing.snap")},
		strings.NewReader(""), &out, &errw)
	if err == nil {
		t.Error("missing -resume snapshot accepted")
	}
}
