package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	elsa "github.com/elsa-hpc/elsa"
	"github.com/elsa-hpc/elsa/internal/ingest"
)

var testStart = time.Date(2006, 1, 2, 15, 0, 0, 0, time.UTC)

var shared struct {
	once   sync.Once
	blob   string // saved model JSON
	stream []elsa.Record
}

// fixture trains a model on half a synthetic BGL log (once per process),
// saves it to a per-test path and returns the held-out half.
func fixture(t *testing.T) (modelPath string, stream []elsa.Record) {
	t.Helper()
	shared.once.Do(func() {
		log := elsa.GenerateBGL(91, testStart, 4*24*time.Hour)
		cut := testStart.Add(2 * 24 * time.Hour)
		train, test, _ := log.Split(cut)
		model := elsa.Train(train, testStart, cut, elsa.DefaultTrainConfig())
		var sb strings.Builder
		if err := model.Save(&sb); err != nil {
			t.Fatal(err)
		}
		shared.blob, shared.stream = sb.String(), test
	})
	modelPath = filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(modelPath, []byte(shared.blob), 0o644); err != nil {
		t.Fatal(err)
	}
	return modelPath, shared.stream
}

func canonical(t *testing.T, recs []elsa.Record) string {
	t.Helper()
	var sb strings.Builder
	if err := elsa.WriteLog(&sb, recs); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRunRequiresModel(t *testing.T) {
	var out, errw strings.Builder
	if err := run(nil, strings.NewReader(""), &out, &errw); err == nil {
		t.Fatal("run without -model succeeded")
	}
}

func TestRunMonitorsStream(t *testing.T) {
	modelPath, stream := fixture(t)
	var out, errw strings.Builder
	err := run([]string{"-model", modelPath, "-late"},
		strings.NewReader(canonical(t, stream)), &out, &errw)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errw.String())
	}
	if !strings.Contains(errw.String(), "records over") {
		t.Errorf("summary line missing from stderr:\n%s", errw.String())
	}
	if !strings.Contains(errw.String(), "stage source") {
		t.Errorf("stage table missing from stderr:\n%s", errw.String())
	}
	if out.Len() == 0 {
		t.Error("no predictions printed; fixture too quiet to exercise the monitor")
	}
}

// TestRunRefreshEvery drives the daemon with periodic incremental
// retraining armed: the refresh rounds must be announced on stderr and
// monitoring must keep emitting predictions across them.
func TestRunRefreshEvery(t *testing.T) {
	modelPath, stream := fixture(t)
	var out, errw strings.Builder
	err := run([]string{"-model", modelPath, "-late", "-refresh-every", "2000"},
		strings.NewReader(canonical(t, stream)), &out, &errw)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errw.String())
	}
	if !strings.Contains(errw.String(), "elsamon: refresh:") {
		t.Errorf("refresh rounds not announced on stderr:\n%s", errw.String())
	}
	if !strings.Contains(errw.String(), "chains (remined)") {
		t.Errorf("first refresh round did not remine:\n%s", errw.String())
	}
	if out.Len() == 0 {
		t.Error("no predictions printed with -refresh-every armed")
	}
}

// TestRunSnapshotResume is the daemon-level crash-resume test: kill the
// monitor after half the stream (run one exits, leaving its -snapshot
// file), start a second process with -resume over the rest, and the two
// processes' combined prediction output must equal an uninterrupted
// run's, line for line.
func TestRunSnapshotResume(t *testing.T) {
	modelPath, stream := fixture(t)
	snap := filepath.Join(t.TempDir(), "mon.snap")
	half := len(stream) / 2

	var whole, errw strings.Builder
	if err := run([]string{"-model", modelPath, "-late"},
		strings.NewReader(canonical(t, stream)), &whole, &errw); err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	var first, second strings.Builder
	errw.Reset()
	if err := run([]string{"-model", modelPath, "-late", "-snapshot", snap, "-snapshot-every", "50"},
		strings.NewReader(canonical(t, stream[:half])), &first, &errw); err != nil {
		t.Fatalf("first incarnation: %v\nstderr:\n%s", err, errw.String())
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot file not written: %v", err)
	}
	if _, err := os.Stat(snap + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp snapshot left behind (rename not atomic?): %v", err)
	}
	errw.Reset()
	if err := run([]string{"-model", modelPath, "-late", "-resume", snap},
		strings.NewReader(canonical(t, stream[half:])), &second, &errw); err != nil {
		t.Fatalf("resumed incarnation: %v\nstderr:\n%s", err, errw.String())
	}
	if !strings.Contains(errw.String(), "resumed from") {
		t.Errorf("resume not announced on stderr:\n%s", errw.String())
	}

	if got, want := first.String()+second.String(), whole.String(); got != want {
		t.Errorf("combined prediction output differs from the uninterrupted run:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// fillSegDir appends recs to a segment directory, with segments small
// enough that a real stream crosses several rolls.
func fillSegDir(t *testing.T, dir string, recs []elsa.Record) {
	t.Helper()
	w, err := ingest.CreateSegmentDir(dir, ingest.SegmentOptions{SegmentBytes: 16 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRunIngestBackendsEquivalence pins the pluggable-ingest contract at
// the daemon level: the same stream fed over stdin, a flat file, a
// segment directory and a unix socket produces byte-identical prediction
// output.
func TestRunIngestBackendsEquivalence(t *testing.T) {
	modelPath, stream := fixture(t)
	text := canonical(t, stream)

	var want, errw strings.Builder
	if err := run([]string{"-model", modelPath, "-late"},
		strings.NewReader(text), &want, &errw); err != nil {
		t.Fatalf("stdin run: %v", err)
	}
	if want.Len() == 0 {
		t.Fatal("fixture produced no predictions; equivalence proves nothing")
	}

	dir := t.TempDir()
	logPath := filepath.Join(dir, "stream.log")
	if err := os.WriteFile(logPath, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	var fileOut strings.Builder
	errw.Reset()
	if err := run([]string{"-model", modelPath, "-late", "-ingest", "file", "-in", logPath},
		strings.NewReader(""), &fileOut, &errw); err != nil {
		t.Fatalf("file run: %v\nstderr:\n%s", err, errw.String())
	}
	if fileOut.String() != want.String() {
		t.Error("file backend output differs from the stdin run")
	}

	segDir := filepath.Join(dir, "segs")
	fillSegDir(t, segDir, stream)
	var segOut strings.Builder
	errw.Reset()
	if err := run([]string{"-model", modelPath, "-late", "-ingest", "segdir", "-in", segDir},
		strings.NewReader(""), &segOut, &errw); err != nil {
		t.Fatalf("segdir run: %v\nstderr:\n%s", err, errw.String())
	}
	if segOut.String() != want.String() {
		t.Error("segdir backend output differs from the stdin run")
	}

	sock := filepath.Join(dir, "elsa.sock")
	done := make(chan error, 1)
	go func() {
		// The listener comes up inside run; retry the dial until it does.
		var conn net.Conn
		var err error
		for i := 0; i < 200; i++ {
			if conn, err = net.Dial("unix", sock); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		fc := ingest.NewFrameConn(conn)
		for _, rec := range stream {
			if err := fc.WriteRecord(rec); err != nil {
				done <- err
				return
			}
		}
		done <- fc.End()
	}()
	var sockOut strings.Builder
	errw.Reset()
	if err := run([]string{"-model", modelPath, "-late", "-ingest", "socket", "-listen", "unix:" + sock},
		strings.NewReader(""), &sockOut, &errw); err != nil {
		t.Fatalf("socket run: %v\nstderr:\n%s", err, errw.String())
	}
	if err := <-done; err != nil {
		t.Fatalf("socket producer: %v", err)
	}
	if sockOut.String() != want.String() {
		t.Error("socket backend output differs from the stdin run")
	}
}

// TestRunIngestSegdirKillResume extends the crash-resume equality test
// across the segmented store: the first incarnation reads the directory
// as far as it goes and snapshots (the ingest offset rides along), the
// writer appends the rest, and a -resume incarnation Seeks back to the
// offset and continues — combined output equal to one uninterrupted run.
func TestRunIngestSegdirKillResume(t *testing.T) {
	modelPath, stream := fixture(t)
	half := len(stream) / 2

	full := filepath.Join(t.TempDir(), "full")
	fillSegDir(t, full, stream)
	var whole, errw strings.Builder
	if err := run([]string{"-model", modelPath, "-late", "-ingest", "segdir", "-in", full},
		strings.NewReader(""), &whole, &errw); err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	dir := filepath.Join(t.TempDir(), "segs")
	fillSegDir(t, dir, stream[:half])
	snap := filepath.Join(t.TempDir(), "mon.snap")
	var first, second strings.Builder
	errw.Reset()
	if err := run([]string{"-model", modelPath, "-late", "-ingest", "segdir", "-in", dir,
		"-snapshot", snap, "-snapshot-every", "50"},
		strings.NewReader(""), &first, &errw); err != nil {
		t.Fatalf("first incarnation: %v\nstderr:\n%s", err, errw.String())
	}

	// The daemon is dead; the collector keeps appending to the store.
	fillSegDir(t, dir, stream[half:])

	errw.Reset()
	if err := run([]string{"-model", modelPath, "-late", "-ingest", "segdir", "-in", dir,
		"-resume", snap},
		strings.NewReader(""), &second, &errw); err != nil {
		t.Fatalf("resumed incarnation: %v\nstderr:\n%s", err, errw.String())
	}
	if !strings.Contains(errw.String(), "ingest resumed at record") {
		t.Errorf("offset seek not announced on stderr:\n%s", errw.String())
	}

	if got, want := first.String()+second.String(), whole.String(); got != want {
		t.Errorf("combined prediction output differs from the uninterrupted run:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRunRejectsBadSnapshotFlags(t *testing.T) {
	modelPath, _ := fixture(t)
	var out, errw strings.Builder
	err := run([]string{"-model", modelPath, "-snapshot-every", "0"},
		strings.NewReader(""), &out, &errw)
	if err == nil {
		t.Error("non-positive -snapshot-every accepted")
	}
	err = run([]string{"-model", modelPath, "-refresh-every", "-1"},
		strings.NewReader(""), &out, &errw)
	if err == nil {
		t.Error("negative -refresh-every accepted")
	}
	err = run([]string{"-model", modelPath, "-resume", filepath.Join(t.TempDir(), "missing.snap")},
		strings.NewReader(""), &out, &errw)
	if err == nil {
		t.Error("missing -resume snapshot accepted")
	}
}

// TestWriteSnapshotCrashConsistent pins the snapshot write discipline:
// the temp file never survives (success or failure), a failed snapshot
// leaves the previous good snapshot byte-identical, and a successful one
// is immediately resumable.
func TestWriteSnapshotCrashConsistent(t *testing.T) {
	modelPath, stream := fixture(t)
	blob, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	model, err := elsa.LoadModel(strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	mon := model.NewMonitor(stream[0].Time)
	for _, r := range stream[:200] {
		mon.Feed(r)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "mon.snap")
	if err := writeSnapshot(mon, path); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after a successful snapshot")
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.ResumeMonitor(strings.NewReader(string(good))); err != nil {
		t.Fatalf("snapshot not resumable: %v", err)
	}

	// A failing snapshot (closed monitor) must not disturb the good one
	// and must clean up its temp file.
	mon.Close()
	if err := writeSnapshot(mon, path); err == nil {
		t.Fatal("snapshot of a closed monitor succeeded")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after a failed snapshot")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(good) {
		t.Fatal("failed snapshot corrupted the previous good snapshot")
	}
}
