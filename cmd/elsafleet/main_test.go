package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	elsa "github.com/elsa-hpc/elsa"
	"github.com/elsa-hpc/elsa/internal/ingest"
)

var testStart = time.Date(2006, 1, 2, 15, 0, 0, 0, time.UTC)

var shared struct {
	once   sync.Once
	blob   string // saved model JSON
	stream []elsa.Record
}

// fixture trains a model on half a synthetic BGL log (once per process),
// saves it to a per-test path and returns part of the held-out half —
// enough stream for every shard to see traffic without slowing the
// command tests down.
func fixture(t *testing.T) (modelPath string, stream []elsa.Record) {
	t.Helper()
	shared.once.Do(func() {
		log := elsa.GenerateBGL(91, testStart, 4*24*time.Hour)
		cut := testStart.Add(2 * 24 * time.Hour)
		train, test, _ := log.Split(cut)
		model := elsa.Train(train, testStart, cut, elsa.DefaultTrainConfig())
		var sb strings.Builder
		if err := model.Save(&sb); err != nil {
			t.Fatal(err)
		}
		shared.blob, shared.stream = sb.String(), test[:len(test)/2]
	})
	modelPath = filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(modelPath, []byte(shared.blob), 0o644); err != nil {
		t.Fatal(err)
	}
	return modelPath, shared.stream
}

func canonical(t *testing.T, recs []elsa.Record) string {
	t.Helper()
	var sb strings.Builder
	if err := elsa.WriteLog(&sb, recs); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errw strings.Builder
	if err := run(nil, strings.NewReader(""), &out, &errw); err == nil {
		t.Error("run without -model succeeded")
	}
	modelPath, _ := fixture(t)
	if err := run([]string{"-model", modelPath, "-scope", "cluster"},
		strings.NewReader(""), &out, &errw); err == nil {
		t.Error("unknown -scope accepted")
	}
	if err := run([]string{"-model", modelPath, "-shards", "0"},
		strings.NewReader(""), &out, &errw); err == nil {
		t.Error("non-positive -shards accepted")
	}
	if err := run([]string{"-model", modelPath, "-ingest", "file"},
		strings.NewReader(""), &out, &errw); err == nil {
		t.Error("-ingest file without -in accepted")
	}
}

// TestRunShardsStream drives a 4-shard fleet over stdin: the merged
// stream must carry shard/seq attribution on every line, and the final
// status table must expose each shard's supervisor health.
func TestRunShardsStream(t *testing.T) {
	modelPath, stream := fixture(t)
	var out, errw strings.Builder
	err := run([]string{"-model", modelPath, "-late", "-shards", "4", "-status-every", "20000"},
		strings.NewReader(canonical(t, stream)), &out, &errw)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errw.String())
	}
	if out.Len() == 0 {
		t.Fatal("no predictions printed; fixture too quiet to exercise the fleet")
	}
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		if !strings.Contains(line, " shard=shard") || !strings.Contains(line, " seq=") {
			t.Fatalf("prediction line missing shard/seq attribution: %q", line)
		}
	}
	es := errw.String()
	if !strings.Contains(es, "misroutes self-healed") {
		t.Errorf("summary line missing from stderr:\n%s", es)
	}
	for _, name := range []string{"shard0", "shard1", "shard2", "shard3"} {
		if !strings.Contains(es, "shard "+name) {
			t.Errorf("status table missing %s:\n%s", name, es)
		}
	}
	if !strings.Contains(es, "trips=0") || !strings.Contains(es, "health=ok") {
		t.Errorf("status table missing supervisor health columns:\n%s", es)
	}
	if strings.Count(es, "shard shard0") < 2 {
		t.Errorf("-status-every did not print periodic tables:\n%s", es)
	}
}

// TestRunSocketMatchesStdin is the multi-process deployment shape: a
// producer dials the fleet's socket listener and streams CRC-framed
// records; the merged prediction output must be byte-identical to the
// same stream fed over stdin.
func TestRunSocketMatchesStdin(t *testing.T) {
	modelPath, stream := fixture(t)

	var want, errw strings.Builder
	if err := run([]string{"-model", modelPath, "-late", "-shards", "2"},
		strings.NewReader(canonical(t, stream)), &want, &errw); err != nil {
		t.Fatalf("stdin run: %v", err)
	}
	if want.Len() == 0 {
		t.Fatal("fixture produced no predictions; equivalence proves nothing")
	}

	sock := filepath.Join(t.TempDir(), "elsa.sock")
	done := make(chan error, 1)
	go func() {
		// The listener comes up inside run; retry the dial until it does.
		var conn net.Conn
		var err error
		for i := 0; i < 200; i++ {
			if conn, err = net.Dial("unix", sock); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		fc := ingest.NewFrameConn(conn)
		for _, rec := range stream {
			if err := fc.WriteRecord(rec); err != nil {
				done <- err
				return
			}
		}
		done <- fc.End()
	}()
	var sockOut strings.Builder
	errw.Reset()
	if err := run([]string{"-model", modelPath, "-late", "-shards", "2", "-ingest", "socket", "-listen", "unix:" + sock},
		strings.NewReader(""), &sockOut, &errw); err != nil {
		t.Fatalf("socket run: %v\nstderr:\n%s", err, errw.String())
	}
	if err := <-done; err != nil {
		t.Fatalf("socket producer: %v", err)
	}
	if sockOut.String() != want.String() {
		t.Error("socket backend output differs from the stdin run")
	}
}
