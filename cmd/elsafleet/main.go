// Command elsafleet runs the sharded monitor fleet: it loads a trained
// model, partitions the record stream by topology scope across N
// supervised shards (package internal/fleet), and prints the merged
// cluster-level prediction stream.
//
// Usage:
//
//	elsa -log history.log -train-days 5 -save model.json
//	elsafleet -model model.json -shards 4 -scope rack < stream
//
// Each shard owns the records of a set of scope keys (racks by default)
// chosen by consistent hashing, so adding or removing shards moves only
// the minimal fraction of keys. Shards run under internal/resilience
// supervision: a panicking or wedged shard is restored from its last
// snapshot and the journaled suffix is replayed, with the catch-up
// predictions flagged degraded. Records keep flowing to the surviving
// shards throughout.
//
// Besides stdin, -ingest selects a pluggable backend (package
// internal/ingest), which is how a multi-process deployment feeds the
// fleet — producers dial the socket with CRC-framed records:
//
//	elsafleet -model model.json -ingest socket -listen unix:/tmp/elsa.sock
//	elsafleet -model model.json -ingest segdir -in /var/lib/elsa/log -follow
//
// Each prediction is printed as one line, the elsamon format plus the
// owning shard and its per-shard sequence number:
//
//	PREDICT <expected-time> lead=<window> scope=<scope> at=<trigger> event=<template> shard=<name> seq=<n>
//
// Catch-up predictions replayed across a failover carry a trailing
// "degraded" marker. With -status-every, a per-shard health table
// (breaker state, trips, half-open probes, gaps, handoffs) is printed
// to stderr periodically; the final table always prints at exit.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	elsa "github.com/elsa-hpc/elsa"
	"github.com/elsa-hpc/elsa/internal/fleet"
	"github.com/elsa-hpc/elsa/internal/ingest"
	"github.com/elsa-hpc/elsa/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "elsafleet:", err)
		os.Exit(1)
	}
}

// run executes one fleet invocation. Flags live on a private FlagSet and
// all I/O goes through the parameters, so tests drive it in-process.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("elsafleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		modelPath = fs.String("model", "", "trained model (from elsa -save) (required)")
		shards    = fs.Int("shards", fleet.DefaultShards, "number of supervised monitor shards")
		scopeS    = fs.String("scope", "rack", "partitioning granularity: node, nodecard, midplane, rack or system")
		snapEvery = fs.Int("snapshot-every", 0, "journal entries between automatic shard snapshots (0 = package default, negative disables)")
		formatS   = fs.String("format", "canonical", "input format: canonical, bgl or syslog (stdin only)")
		year      = fs.Int("year", 0, "year completing syslog timestamps (0 = current)")
		showLate  = fs.Bool("late", false, "also print predictions whose window has already closed")
		statEvery = fs.Int("status-every", 0, "records between per-shard status tables on stderr (0 = final only)")
		ingestS   = fs.String("ingest", "", "ingest backend: file, socket or segdir (default: lines on stdin)")
		inPath    = fs.String("in", "", "input path: log file (-ingest file) or segment directory (-ingest segdir)")
		listenS   = fs.String("listen", "", "listen address as net:addr, e.g. unix:/tmp/elsa.sock or tcp:127.0.0.1:7700 (-ingest socket)")
		follow    = fs.Bool("follow", false, "with -ingest segdir: tail the directory for new records instead of stopping at the end")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("-model is required")
	}
	if *shards <= 0 {
		return fmt.Errorf("-shards must be positive")
	}
	scope, err := topology.ParseScope(*scopeS)
	if err != nil {
		return err
	}
	format, err := elsa.ParseLogFormat(*formatS)
	if err != nil {
		return err
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := elsa.LoadModel(mf)
	mf.Close()
	if err != nil {
		return err
	}
	feed := "stdin"
	if *ingestS != "" {
		feed = "-ingest " + *ingestS
	}
	fmt.Fprintf(stderr, "elsafleet: model with %d event types, %d chains loaded; %d shards at %s scope (%s)\n",
		model.EventCount(), len(model.PredictiveChains()), *shards, scope, feed)

	cfg := fleet.Config{Shards: *shards, Scope: scope, SnapshotEvery: *snapEvery}
	var next func(ctx context.Context) (elsa.Record, error)
	var cleanup func()
	if *ingestS != "" {
		if *formatS != "canonical" {
			return fmt.Errorf("-ingest backends carry canonical records; -format must stay canonical")
		}
		b, err := openBackend(*ingestS, *inPath, *listenS, *follow)
		if err != nil {
			return err
		}
		cleanup = func() { b.Close() }
		next = b.Next
	} else {
		sc := bufio.NewScanner(stdin)
		sc.Buffer(make([]byte, 64*1024), 1<<20)
		next = func(ctx context.Context) (elsa.Record, error) {
			for sc.Scan() {
				line := sc.Text()
				if line == "" || line[0] == '#' {
					continue
				}
				rec, err := decode(line, format, *year)
				if err != nil {
					continue // undecodable line: skip, like elsamon
				}
				return rec, nil
			}
			if err := sc.Err(); err != nil {
				return elsa.Record{}, err
			}
			return elsa.Record{}, io.EOF
		}
	}
	if cleanup != nil {
		defer cleanup()
	}

	ctx := context.Background()
	out := bufio.NewWriter(stdout)
	defer out.Flush()
	var coord *fleet.Coordinator
	fed := 0
	for {
		rec, err := next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if coord == nil {
			// Anchor tick 0 at the first record's time, like elsamon.
			coord, err = fleet.New(model, rec.Time.Truncate(10*time.Second), cfg)
			if err != nil {
				return err
			}
		}
		for _, p := range coord.Feed(rec) {
			emit(out, model, p, *showLate)
		}
		out.Flush()
		fed++
		if *statEvery > 0 && fed%*statEvery == 0 {
			printStatus(stderr, coord.Stats())
		}
	}
	if coord == nil {
		return fmt.Errorf("no records received")
	}
	res := coord.Close()
	for _, p := range res.Tail {
		emit(out, model, p, *showLate)
	}
	out.Flush()
	st := res.Stats
	fmt.Fprintf(stderr, "elsafleet: %d records over %d scope keys, %d predictions (%d degraded), %d misroutes self-healed, %d entries lost\n",
		st.Records, st.Scopes, st.Predictions, st.Degraded, st.Misrouted, st.Lost)
	printStatus(stderr, st)
	return nil
}

// openBackend builds the ingest.Backend the -ingest flag selected
// (mirrors elsamon).
func openBackend(kind, in, listen string, follow bool) (ingest.Backend, error) {
	switch kind {
	case "file":
		if in == "" {
			return nil, fmt.Errorf("-ingest file requires -in <logfile>")
		}
		return ingest.OpenFile(in)
	case "segdir":
		if in == "" {
			return nil, fmt.Errorf("-ingest segdir requires -in <segment-dir>")
		}
		return ingest.OpenSegDir(in, ingest.SegDirOptions{Follow: follow})
	case "socket":
		network, addr, ok := strings.Cut(listen, ":")
		if !ok || network == "" || addr == "" {
			return nil, fmt.Errorf("-ingest socket requires -listen net:addr (e.g. unix:/tmp/elsa.sock)")
		}
		return ingest.ListenSocket(network, addr, 1024)
	default:
		return nil, fmt.Errorf("unknown -ingest backend %q (want file, socket or segdir)", kind)
	}
}

// printStatus renders one per-shard health table: routing and journal
// volume, merged predictions, failure accounting, and the supervisor's
// breaker state with trip and half-open probe counts.
func printStatus(stderr io.Writer, st fleet.Stats) {
	for _, sh := range st.Shards {
		fmt.Fprintf(stderr, "elsafleet: shard %-8s state=%-6s scopes=%-4d entries=%-8d preds=%-6d degraded=%-4d",
			sh.Name, sh.State, sh.Scopes, sh.Entries, sh.Predictions, sh.Degraded)
		fmt.Fprintf(stderr, " gaps=%d/%d misrouted=%d snapshots=%d handoffs=%d failovers=%d lost=%d",
			sh.Gaps, sh.GapEntries, sh.Misrouted, sh.Snapshots, sh.Handoffs, sh.Failovers, sh.LostEntries)
		sup := sh.Supervisor
		fmt.Fprintf(stderr, " panics=%d restarts=%d trips=%d probes=%d denied=%d health=%s\n",
			sup.Panics, sup.Restarts, sup.Trips, sup.Probes, sh.RecoveryDenied, sup.Health)
	}
}

func decode(line string, format elsa.LogFormat, year int) (elsa.Record, error) {
	recs, dropped, err := elsa.ReadLogFormat(strings.NewReader(line), format, year)
	if err != nil {
		return elsa.Record{}, err
	}
	if dropped > 0 || len(recs) != 1 {
		return elsa.Record{}, fmt.Errorf("undecodable line")
	}
	return recs[0], nil
}

// emit prints one merged prediction in the elsamon line format plus the
// owning shard, its per-shard sequence number, and a degraded marker on
// failover catch-up forecasts.
func emit(out *bufio.Writer, model *elsa.Model, p fleet.Merged, showLate bool) {
	if p.Late() && !showLate {
		return
	}
	status := "PREDICT"
	if p.Late() {
		status = "LATE"
	}
	fmt.Fprintf(out, "%s %s lead=%s scope=%s at=%s event=%s shard=%s seq=%d",
		status, p.ExpectedAt.Format(time.RFC3339), p.Lead.Round(time.Second),
		p.Scope, p.Trigger, model.EventTemplate(p.Event), p.Shard, p.Seq)
	if p.Degraded {
		fmt.Fprint(out, " degraded")
	}
	fmt.Fprintln(out)
}
