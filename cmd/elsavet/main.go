// Command elsavet is the project's vettool: the internal/lint analyzer
// suite packaged as a unitchecker so the standard go vet driver runs it
// over the whole module with full type information, caching and
// cross-package facts:
//
//	go build -o bin/elsavet ./cmd/elsavet
//	go vet -vettool=$PWD/bin/elsavet ./...
//
// It also carries a standalone mode for the workflows go vet cannot
// drive — applying SuggestedFixes:
//
//	elsavet -fix   [moduleRoot]   # rewrite files in place
//	elsavet -diff  [moduleRoot]   # print would-be fixes; exit 1 if any
//	elsavet -stand [moduleRoot]   # report only, no unitchecker protocol
//	elsavet -json  [moduleRoot]   # report as a JSON array (machine-readable)
//
// See internal/lint for the contracts the suite enforces and DESIGN.md
// §10 for the annotation and suppression conventions.
package main

import (
	"flag"
	"fmt"
	"os"

	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/elsa-hpc/elsa/internal/lint"
)

func main() {
	// The unitchecker protocol invokes the tool with *.cfg files and its
	// own flags; only explicit standalone flags divert from it.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-fix", "--fix", "-diff", "--diff", "-stand", "--stand", "-json", "--json":
			os.Exit(standalone(os.Args[1:]))
		}
	}
	unitchecker.Main(lint.Analyzers...)
}

func standalone(args []string) int {
	fs := flag.NewFlagSet("elsavet", flag.ExitOnError)
	fix := fs.Bool("fix", false, "apply suggested fixes in place")
	diff := fs.Bool("diff", false, "print suggested fixes as a diff; exit 1 if any exist")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (machine-readable)")
	fs.Bool("stand", false, "standalone report mode (no fixes)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	root := "."
	if fs.NArg() > 0 {
		root = fs.Arg(0)
	}
	findings, fixable, err := lint.RunStandalone(lint.StandaloneOptions{
		Root:      root,
		Fix:       *fix,
		Diff:      *diff,
		JSON:      *jsonOut,
		Analyzers: lint.Analyzers,
	}, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elsavet:", err)
		return 2
	}
	if *diff && fixable > 0 {
		fmt.Fprintf(os.Stderr, "elsavet: %d file(s) have unapplied autofixes; run elsavet -fix\n", fixable)
		return 1
	}
	if len(findings) > 0 && !*fix {
		return 1
	}
	return 0
}
