// Command elsavet is the project's vettool: the internal/lint analyzer
// suite packaged as a unitchecker so the standard go vet driver runs it
// over the whole module with full type information and caching:
//
//	go build -o bin/elsavet ./cmd/elsavet
//	go vet -vettool=$PWD/bin/elsavet ./...
//
// See internal/lint for the contracts the suite enforces and DESIGN.md
// §10 for the annotation and suppression conventions.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/elsa-hpc/elsa/internal/lint"
)

func main() {
	unitchecker.Main(lint.Analyzers...)
}
