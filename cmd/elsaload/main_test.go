package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var stdout, stderr strings.Builder
	err := run([]string{"-backend", "segdir", "-days", "1", "-quiet",
		"-dir", t.TempDir(), "-out", out}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Backend    string `json:"backend"`
		Records    int    `json:"records"`
		Benchmarks []struct {
			Name string `json:"name"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Backend != "segdir" || rep.Records == 0 || len(rep.Benchmarks) == 0 {
		t.Errorf("report incomplete: %+v", rep)
	}
	if !strings.Contains(stderr.String(), "soak finished") {
		t.Errorf("summary missing from stderr:\n%s", stderr.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := run([]string{"-days", "0"}, &stdout, &stderr); err == nil {
		t.Error("non-positive -days accepted")
	}
	if err := run([]string{"-backend", "kafka", "-days", "1"}, &stdout, &stderr); err == nil {
		t.Error("unknown backend accepted")
	}
}
