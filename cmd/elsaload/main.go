// Command elsaload is the serving-path soak harness: it replays months
// of synthetic BG/L-profile logs through a pluggable ingest backend
// into a live monitor and writes the measurements — sustained
// throughput, feed latency percentiles, shed/quarantine rates — as one
// committed point of the perf record (BENCH_serve.json), in the format
// BENCH_train.json established.
//
// Usage:
//
//	elsaload -backend segdir -days 30 -out BENCH_serve.json
//	elsaload -backend socket -days 2 -rate 50000 -duration 30s
//	elsaload -backend segdir -days 2 -shards 4
//
// With -shards the replay runs through the sharded fleet coordinator
// (internal/fleet) instead of a single monitor, so the committed point
// measures the fleet path's routing and supervision overhead too.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/elsa-hpc/elsa/internal/load"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "elsaload:", err)
		os.Exit(1)
	}
}

// run executes one soak invocation; flags live on a private FlagSet and
// I/O goes through the parameters so tests drive it in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("elsaload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		backend  = fs.String("backend", "segdir", "ingest backend to soak: segdir, file or socket")
		days     = fs.Int("days", 30, "generated serve-stream length in days")
		events   = fs.Int("events", 0, "scale the profile to this many event types (0 = base Blue Gene/L)")
		rate     = fs.Float64("rate", 0, "throttle the replay to this many records/second (0 = unthrottled)")
		shards   = fs.Int("shards", 0, "replay through a sharded fleet with this many shards (0 = single monitor)")
		duration = fs.Duration("duration", 0, "stop the replay after this much wall clock (0 = replay everything)")
		seed     = fs.Int64("seed", 7, "generator seed")
		dir      = fs.String("dir", "", "working directory for backend artifacts (default: throwaway temp dir)")
		outPath  = fs.String("out", "", "write the JSON report here (default: stdout)")
		quiet    = fs.Bool("quiet", false, "suppress per-day progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *days <= 0 {
		return fmt.Errorf("-days must be positive")
	}
	opts := load.Options{
		Backend:     *backend,
		Dir:         *dir,
		Days:        *days,
		EventTypes:  *events,
		Rate:        *rate,
		Shards:      *shards,
		MaxDuration: *duration,
		Seed:        *seed,
	}
	if !*quiet {
		opts.Progress = stderr
	}
	t0 := time.Now()
	rep, err := load.Run(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "elsaload: soak finished in %s\n%s", time.Since(t0).Round(time.Millisecond), rep.Summary())

	w := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return rep.WriteJSON(w)
}
