// Command elsagen generates a synthetic HPC system log with ground truth,
// standing in for the gated Blue Gene/L and Mercury datasets.
//
// Usage:
//
//	elsagen -profile bgl -days 16 -seed 42 -out system.log -truth truth.jsonl
//
// The log is written in the canonical text format readable by the elsa
// tool; the ground truth is JSON lines, one failure per line.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	elsa "github.com/elsa-hpc/elsa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elsagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		profile = flag.String("profile", "bgl", "machine profile: bgl or mercury")
		days    = flag.Int("days", 16, "log duration in days")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("out", "system.log", "log output path ('-' for stdout)")
		truth   = flag.String("truth", "", "ground-truth output path (JSON lines; empty = skip)")
		startS  = flag.String("start", "2006-07-01T00:00:00Z", "log start time (RFC3339)")
	)
	flag.Parse()

	start, err := time.Parse(time.RFC3339, *startS)
	if err != nil {
		return fmt.Errorf("bad -start: %w", err)
	}
	if *days <= 0 {
		return fmt.Errorf("-days must be positive")
	}

	var prof elsa.MachineProfile
	switch *profile {
	case "bgl":
		prof = elsa.BlueGeneLProfile()
	case "mercury":
		prof = elsa.MercuryProfile()
	default:
		return fmt.Errorf("unknown -profile %q (bgl or mercury)", *profile)
	}

	log := elsa.Generate(prof, *seed, start, time.Duration(*days)*24*time.Hour)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := elsa.WriteLog(w, log.Records); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "elsagen: %d records, %d ground-truth failures over %d days (%s)\n",
		len(log.Records), len(log.Failures), *days, *profile)

	if *truth != "" {
		f, err := os.Create(*truth)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := elsa.WriteFailures(f, log.Failures); err != nil {
			return err
		}
	}
	return nil
}
