package elsa

import (
	"time"

	"github.com/elsa-hpc/elsa/internal/predict"
)

// Monitor is the incremental form of Predict: records are fed one at a
// time (a daemon tailing the live log), and predictions surface as soon
// as their sampling tick closes. New message shapes are learned online by
// the model's template organizer, as HELO does.
type Monitor struct {
	model  *Model
	stream *predict.Stream
}

// NewMonitor arms the model for incremental prediction, with the first
// sampling tick starting at start.
func (m *Model) NewMonitor(start time.Time) *Monitor {
	return m.NewMonitorWith(start, DefaultPredictConfig())
}

// NewMonitorWith is NewMonitor with an explicit engine configuration.
func (m *Model) NewMonitorWith(start time.Time, cfg PredictConfig) *Monitor {
	engine := predict.NewEngine(m.inner, m.profiles, cfg)
	return &Monitor{model: m, stream: predict.NewStream(engine, start)}
}

// Feed ingests one record (records must arrive in time order) and returns
// any predictions that became visible.
func (mo *Monitor) Feed(rec Record) []Prediction {
	if rec.EventID < 0 {
		rec.EventID = mo.model.organizer.Learn(rec.Message, rec.Severity).ID
	}
	return mo.stream.Feed(rec)
}

// AdvanceTo closes sampling ticks up to now; call it periodically during
// quiet spells so chain expiry keeps pace with the clock.
func (mo *Monitor) AdvanceTo(now time.Time) []Prediction {
	return mo.stream.AdvanceTo(now)
}

// Close flushes the open tick and returns the accumulated run result.
func (mo *Monitor) Close() *PredictResult { return mo.stream.Close() }

// Result returns the accumulated result so far without closing.
func (mo *Monitor) Result() *PredictResult { return mo.stream.Result() }
