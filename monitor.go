package elsa

import (
	"time"

	"github.com/elsa-hpc/elsa/internal/ingest"
	"github.com/elsa-hpc/elsa/internal/pipeline"
	"github.com/elsa-hpc/elsa/internal/predict"
)

// IngestOffset is a resume point in an ingest backend's stream (see
// internal/ingest): it rides in monitor snapshots so a resumed daemon
// can Seek its backend to exactly the record after the snapshot.
type IngestOffset = ingest.Offset

// Monitor is the incremental form of Predict: records are fed one at a
// time (a daemon tailing the live log), and predictions surface as soon
// as their sampling tick closes. New message shapes are learned online by
// the model's template organizer, as HELO does. It runs the same
// internal/pipeline stage graph batch Predict replays, driven
// synchronously.
//
// Ingest contract: records should arrive roughly in time order. A record
// up to one sampling tick older than the newest record seen is still
// accepted into its (still open) tick; older records are dropped and
// counted (Stats.LateRecords and the sample stage's Dropped counter)
// rather than corrupting tick state. AdvanceTo is wall-clock
// authoritative: ticks it closes are final.
//
//elsa:snapshot
type Monitor struct {
	model   *Model
	session *pipeline.Session
	// ingestOff is the backend resume point last recorded via
	// SetIngestOffset (or restored from a snapshot); nil when the feed
	// is not offset-addressable (stdin, socket).
	ingestOff *IngestOffset
	//elsa:ephemeral caches Close's result, and a closed monitor cannot be snapshotted
	result *PredictResult
}

// NewMonitor arms the model for incremental prediction, with the first
// sampling tick starting at start.
func (m *Model) NewMonitor(start time.Time) *Monitor {
	return m.NewMonitorWith(start, DefaultPredictConfig())
}

// NewMonitorWith is NewMonitor with an explicit engine configuration.
func (m *Model) NewMonitorWith(start time.Time, cfg PredictConfig) *Monitor {
	engine := predict.NewEngine(m.inner, m.profiles, cfg)
	p := pipeline.New(engine, m.organizer, pipeline.DefaultConfig())
	return &Monitor{model: m, session: p.NewSession(start)}
}

// Feed ingests one record and returns any predictions that became
// visible. See the Monitor type docs for the out-of-order tolerance.
func (mo *Monitor) Feed(rec Record) []Prediction {
	return mo.session.Feed(rec)
}

// AdvanceTo closes sampling ticks up to now; call it periodically during
// quiet spells so chain expiry keeps pace with the clock.
func (mo *Monitor) AdvanceTo(now time.Time) []Prediction {
	return mo.session.AdvanceTo(now)
}

// Close flushes the open ticks and returns the accumulated run result,
// including the per-stage pipeline counters in Stats.Stages. Close is
// idempotent: a second call performs no work and returns the same
// cached result — a daemon's signal handler and its deferred shutdown
// path can both call it safely.
func (mo *Monitor) Close() *PredictResult {
	if mo.result == nil {
		mo.result = mo.session.Close()
	}
	return mo.result
}

// Result returns the accumulated result so far without closing.
func (mo *Monitor) Result() *PredictResult { return mo.session.Result() }

// SetIngestOffset records the ingest backend's current resume point so
// the next Snapshot carries it. A daemon calls it just before each
// snapshot with Backend.Offset(); after ResumeMonitor, the restored
// offset (IngestOffset) is handed back to Backend.Seek so the stream
// continues at exactly the record after the snapshot.
func (mo *Monitor) SetIngestOffset(off IngestOffset) {
	mo.ingestOff = &off
}

// IngestOffset returns the offset recorded by SetIngestOffset (or
// restored from a snapshot) and whether one was ever recorded.
func (mo *Monitor) IngestOffset() (IngestOffset, bool) {
	if mo.ingestOff == nil {
		return IngestOffset{}, false
	}
	return *mo.ingestOff, true
}
