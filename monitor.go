package elsa

import (
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/ingest"
	"github.com/elsa-hpc/elsa/internal/pipeline"
	"github.com/elsa-hpc/elsa/internal/predict"
)

// IngestOffset is a resume point in an ingest backend's stream (see
// internal/ingest): it rides in monitor snapshots so a resumed daemon
// can Seek its backend to exactly the record after the snapshot.
type IngestOffset = ingest.Offset

// ErrClosed is returned by Feed after Close: the monitor's declared
// lifecycle surfaced at runtime as a typed, comparable error.
var ErrClosed = pipeline.ErrClosed

// Monitor is the incremental form of Predict: records are fed one at a
// time (a daemon tailing the live log), and predictions surface as soon
// as their sampling tick closes. New message shapes are learned online by
// the model's template organizer, as HELO does. It runs the same
// internal/pipeline stage graph batch Predict replays, driven
// synchronously.
//
// Ingest contract: records should arrive roughly in time order. A record
// up to one sampling tick older than the newest record seen is still
// accepted into its (still open) tick; older records are dropped and
// counted (Stats.LateRecords and the sample stage's Dropped counter)
// rather than corrupting tick state. AdvanceTo is wall-clock
// authoritative: ticks it closes are final.
//
//elsa:state open closed
//elsa:snapshot
type Monitor struct {
	model *Model
	//elsa:ephemeral pipeline handle; rebuilt from model + snapshot on resume
	pipe    *pipeline.Pipeline
	session *pipeline.Session
	// ingestOff is the backend resume point last recorded via
	// SetIngestOffset (or restored from a snapshot); nil when the feed
	// is not offset-addressable (stdin, socket).
	ingestOff *IngestOffset
	//elsa:ephemeral caches Close's result, and a closed monitor cannot be snapshotted
	result *PredictResult
}

// NewMonitor arms the model for incremental prediction, with the first
// sampling tick starting at start.
func (m *Model) NewMonitor(start time.Time) *Monitor {
	return m.NewMonitorWith(start, DefaultPredictConfig())
}

// NewMonitorWith is NewMonitor with an explicit engine configuration.
func (m *Model) NewMonitorWith(start time.Time, cfg PredictConfig) *Monitor {
	engine := predict.NewEngine(m.inner, m.profiles, cfg)
	p := pipeline.New(engine, m.organizer, m.pipelineConfig())
	return &Monitor{model: m, pipe: p, session: p.NewSession(start)}
}

// pipelineConfig is the monitor's driver configuration: the defaults
// plus an incremental statistics accumulator armed under the model's
// training parameters, so Refresh can retrain from live counters.
func (m *Model) pipelineConfig() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	ac := correlate.AccumConfigFor(m.inner.Mode, m.trainCfg.Correlation)
	cfg.Accumulate = &ac
	return cfg
}

// Feed ingests one record and returns any predictions that became
// visible. See the Monitor type docs for the out-of-order tolerance.
// Feeding a closed monitor returns ErrClosed and ingests nothing.
//
//elsa:requires open
func (mo *Monitor) Feed(rec Record) ([]Prediction, error) {
	return mo.session.Feed(rec)
}

// AdvanceTo closes sampling ticks up to now; call it periodically during
// quiet spells so chain expiry keeps pace with the clock. Advancing a
// closed monitor is a benign no-op.
//
//elsa:requires open
func (mo *Monitor) AdvanceTo(now time.Time) []Prediction {
	return mo.session.AdvanceTo(now)
}

// RefreshStats reports what one incremental retraining round did: how
// many changed pairs were re-scored, whether the full miner re-ran or
// the cheap rescore fast path sufficed, and the resulting chain count.
type RefreshStats = correlate.RefreshStats

// Refresh retrains the model's correlation chains from the live
// statistics the monitor has accumulated since it started (or since the
// snapshot it resumed from) — without replaying the horizon. Only pairs
// whose co-occurrence counters moved since the last Refresh are
// re-scored; when the seed structure is unchanged the existing chains
// are merely re-scored against the fresh spike trains, which keeps a
// steady-state refresh well under the batch retraining cost. The
// running session keeps its stream state across the swap: partial chain
// matches survive when their chain does, and the refreshed chain set is
// live for the very next tick. Chains the refresh adds predict with
// node scope until a location profile is trained for them offline.
//
// A refresh before any tick has closed is a no-op.
func (mo *Monitor) Refresh() RefreshStats {
	acc := mo.pipe.Accumulator()
	if acc == nil || acc.Ticks() == 0 {
		return RefreshStats{}
	}
	st := mo.model.inner.Refresh(acc, mo.model.trainCfg.Correlation)
	mo.session.SyncChains()
	return st
}

// Close flushes the open ticks and returns the accumulated run result,
// including the per-stage pipeline counters in Stats.Stages. Close is
// idempotent: a second call performs no work and returns the same
// cached result — a daemon's signal handler and its deferred shutdown
// path can both call it safely.
//
//elsa:transition open->closed closed->closed
func (mo *Monitor) Close() *PredictResult {
	if mo.result == nil {
		mo.result = mo.session.Close()
	}
	return mo.result
}

// Result returns the accumulated result so far without closing.
func (mo *Monitor) Result() *PredictResult { return mo.session.Result() }

// SetIngestOffset records the ingest backend's current resume point so
// the next Snapshot carries it. A daemon calls it just before each
// snapshot with Backend.Offset(); after ResumeMonitor, the restored
// offset (IngestOffset) is handed back to Backend.Seek so the stream
// continues at exactly the record after the snapshot.
func (mo *Monitor) SetIngestOffset(off IngestOffset) {
	mo.ingestOff = &off
}

// IngestOffset returns the offset recorded by SetIngestOffset (or
// restored from a snapshot) and whether one was ever recorded.
func (mo *Monitor) IngestOffset() (IngestOffset, bool) {
	if mo.ingestOff == nil {
		return IngestOffset{}, false
	}
	return *mo.ingestOff, true
}
