package elsa

import (
	"io"
	"time"

	"github.com/elsa-hpc/elsa/internal/adapters"
)

// LogFormat names a supported input log format.
type LogFormat = adapters.Format

// Supported input formats.
const (
	// FormatCanonical is this repository's text format.
	FormatCanonical = adapters.Canonical
	// FormatBGL is the Blue Gene/L RAS format from the CFDR dataset.
	FormatBGL = adapters.BGL
	// FormatSyslog is classic BSD syslog.
	FormatSyslog = adapters.Syslog
)

// ParseLogFormat decodes a format name ("canonical", "bgl", "syslog").
func ParseLogFormat(s string) (LogFormat, error) { return adapters.ParseFormat(s) }

// ReadLogFormat decodes records from r in the given format. Malformed
// lines are skipped (and counted) rather than failing the whole import —
// archived production logs always contain stray lines. The year parameter
// completes syslog timestamps (ignored by other formats; zero means the
// current year).
func ReadLogFormat(r io.Reader, format LogFormat, year int) (records []Record, dropped int, err error) {
	ar := adapters.NewReader(r, format, adapters.SyslogConfig{Year: year, Location: time.UTC})
	ar.SkipMalformed = true
	records, err = ar.ReadAll()
	return records, ar.Dropped, err
}
