package elsa

import (
	"io"
	"strings"
	"testing"
	"time"
)

// flushCounter counts the writes it receives, proving the streaming
// writer emits one flush per prediction rather than buffering a run.
type flushCounter struct {
	sb     strings.Builder
	writes int
}

func (f *flushCounter) Write(p []byte) (int, error) {
	f.writes++
	return f.sb.Write(p)
}

func TestPredictionWriterStreams(t *testing.T) {
	log := GenerateBGL(48, apiStart, 5*24*time.Hour)
	cut := apiStart.Add(2 * 24 * time.Hour)
	train, test, _ := log.Split(cut)
	model := Train(train, apiStart, cut, DefaultTrainConfig())
	preds := model.Predict(test, cut, log.End).Predictions
	if len(preds) < 2 {
		t.Fatal("fixture yielded too few predictions to prove streaming")
	}

	var fc flushCounter
	pw := NewPredictionWriter(&fc)
	for i, p := range preds {
		before := fc.sb.Len()
		if err := pw.Write(p); err != nil {
			t.Fatal(err)
		}
		if fc.sb.Len() == before {
			t.Fatalf("prediction %d was buffered instead of written through", i)
		}
	}
	if pw.Count() != len(preds) {
		t.Errorf("Count = %d, want %d", pw.Count(), len(preds))
	}
	if fc.writes < len(preds) {
		t.Errorf("underlying writer saw %d writes for %d predictions", fc.writes, len(preds))
	}

	// The streamed output is byte-identical to the slice API (which now
	// wraps the streaming writer), so both stay readable by
	// ReadPredictions.
	var sb strings.Builder
	if err := WritePredictions(&sb, preds); err != nil {
		t.Fatal(err)
	}
	if sb.String() != fc.sb.String() {
		t.Error("streamed and slice outputs differ")
	}
	back, err := ReadPredictions(strings.NewReader(fc.sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(preds) {
		t.Fatalf("read back %d predictions, want %d", len(back), len(preds))
	}
}

// failAfter fails every write past the first, pinning the error-index
// contract the slice API always had.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}

func TestPredictionWriterErrorCarriesIndex(t *testing.T) {
	pw := NewPredictionWriter(&failAfter{})
	if err := pw.Write(Prediction{ExpectedAt: apiStart}); err != nil {
		t.Fatalf("first write: %v", err)
	}
	err := pw.Write(Prediction{ExpectedAt: apiStart})
	if err == nil || !strings.Contains(err.Error(), "prediction 1") {
		t.Fatalf("second write error = %v, want index 1", err)
	}
}
