package elsa

import (
	"time"

	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// SyntheticLog is a generated log with ground truth, standing in for the
// gated Blue Gene/L and Mercury datasets.
type SyntheticLog = gen.Result

// MachineProfile describes a synthetic system (topology, background
// daemons, fault archetypes).
type MachineProfile = gen.Profile

// BlueGeneLProfile returns the Blue Gene/L-style machine profile used by
// the experiments.
func BlueGeneLProfile() MachineProfile { return gen.BlueGeneL() }

// MercuryProfile returns the flat-cluster profile modelled on NCSA
// Mercury.
func MercuryProfile() MachineProfile { return gen.Mercury() }

// Generate produces a synthetic log for the given profile and window.
func Generate(profile MachineProfile, seed int64, start time.Time, dur time.Duration) *SyntheticLog {
	return gen.New(profile, seed).Generate(start, dur)
}

// GenerateBGL is Generate with the Blue Gene/L profile.
func GenerateBGL(seed int64, start time.Time, dur time.Duration) *SyntheticLog {
	return Generate(gen.BlueGeneL(), seed, start, dur)
}

// GenerateMercury is Generate with the Mercury profile.
func GenerateMercury(seed int64, start time.Time, dur time.Duration) *SyntheticLog {
	return Generate(gen.Mercury(), seed, start, dur)
}

// BlueGeneLMachine returns the machine shape (racks, midplanes, node
// cards, nodes) of the BG/L profile.
func BlueGeneLMachine() topology.Machine { return topology.BlueGeneL() }

// ParseLocation decodes a location code ("R00-M0-N0-C:J02-U01",
// "tg-c042", "SYSTEM").
func ParseLocation(s string) (Location, error) { return topology.Parse(s) }
