package elsa

import (
	"github.com/elsa-hpc/elsa/internal/absence"
)

// Absence-detection types: the complement to correlation-based prediction
// for the paper's "node crash = lack of messages" syndrome, where a
// component's failure produces no log events at all — its heartbeats
// simply stop.
type (
	// HeartbeatWatch registers one periodic event type to monitor per
	// location.
	HeartbeatWatch = absence.Watch
	// AbsenceAlert reports one component gone quiet.
	AbsenceAlert = absence.Alert
	// AbsenceMonitor tracks heartbeat freshness per (event, location).
	AbsenceMonitor = absence.Monitor
)

// NewAbsenceMonitor returns a monitor for the given heartbeat watches.
// Feed records with Observe and poll with Check, or replay a batch with
// Run.
func NewAbsenceMonitor(watches ...HeartbeatWatch) *AbsenceMonitor {
	return absence.NewMonitor(watches...)
}

// FindEvent returns the model's event id whose mined template matches the
// example message, for wiring watches (and other event-keyed APIs) by
// message text instead of raw ids.
func (m *Model) FindEvent(exampleMessage string) (int, bool) {
	tm, ok := m.organizer.Match(exampleMessage)
	if !ok {
		return -1, false
	}
	return tm.ID, true
}
