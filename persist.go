package elsa

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/location"
)

// modelEnvelope is the on-disk form of a trained model. The format is
// versioned JSON: small enough to inspect by hand, stable enough to ship
// between the training host and the online monitor.
//
//elsa:snapshot-envelope
type modelEnvelope struct {
	Version   int                          `json:"version"`
	HELO      heloEnvelope                 `json:"helo"`
	Model     *correlate.Model             `json:"model"`
	Locations map[string]*location.Profile `json:"locations"`
}

type heloEnvelope struct {
	Threshold float64          `json:"threshold"`
	Templates []*helo.Template `json:"templates"`
}

// modelFormatVersion increments on breaking changes to the envelope.
const modelFormatVersion = 1

// ErrVersionMismatch reports a persisted artefact written under a
// different format version than this build reads, naming both. Check for
// it with errors.As — it is the signal to retrain (models) or discard
// the snapshot and start a fresh monitor (monitor snapshots) rather than
// to treat the file as corrupt.
type ErrVersionMismatch struct {
	Kind string // "model" or "monitor snapshot"
	Got  int
	Want int
}

func (e *ErrVersionMismatch) Error() string {
	return fmt.Sprintf("elsa: %s format version %d, want %d", e.Kind, e.Got, e.Want)
}

// checkVersion probes only the version field, loosely, before the strict
// decode: a file written by a future format must report the version
// mismatch, not whichever unknown field the strict decoder trips on
// first.
func checkVersion(kind string, data []byte, want int) error {
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("elsa: load %s: %w", kind, err)
	}
	if probe.Version != want {
		return &ErrVersionMismatch{Kind: kind, Got: probe.Version, Want: want}
	}
	return nil
}

// Save serialises the model as versioned JSON.
func (m *Model) Save(w io.Writer) error {
	env := modelEnvelope{
		Version: modelFormatVersion,
		HELO: heloEnvelope{
			Threshold: m.organizer.Threshold(),
			Templates: m.organizer.Templates(),
		},
		Model:     m.inner,
		Locations: m.profiles,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(env); err != nil {
		return fmt.Errorf("elsa: save model: %w", err)
	}
	return nil
}

// LoadModel deserialises a model written by Save. Decoding is strict:
// unknown fields are rejected (a mangled or hand-edited file fails
// loudly instead of silently dropping state), and a file from another
// format version fails with ErrVersionMismatch.
func LoadModel(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("elsa: load model: %w", err)
	}
	if err := checkVersion("model", data, modelFormatVersion); err != nil {
		return nil, err
	}
	var env modelEnvelope
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("elsa: load model: %w", err)
	}
	if env.Model == nil {
		return nil, fmt.Errorf("elsa: model envelope missing model")
	}
	if env.Model.Profiles == nil || env.Model.Thresholds == nil || env.Model.Severity == nil {
		return nil, fmt.Errorf("elsa: model envelope incomplete")
	}
	org, err := restoreOrganizer(env.HELO)
	if err != nil {
		return nil, fmt.Errorf("elsa: load model: %w", err)
	}
	cfg := DefaultTrainConfig()
	cfg.Mode = env.Model.Mode
	if env.Model.Step > 0 {
		cfg.Correlation.Step = env.Model.Step
	}
	return &Model{
		inner:     env.Model,
		profiles:  env.Locations,
		organizer: org,
		trainCfg:  cfg,
	}, nil
}

// restoreOrganizer validates a persisted template set before handing it
// to helo.Restore (which panics on malformed input — fine for internal
// callers, wrong for a file read off disk).
func restoreOrganizer(env heloEnvelope) (*helo.Organizer, error) {
	seen := make([]bool, len(env.Templates))
	for i, t := range env.Templates {
		if t == nil {
			return nil, fmt.Errorf("template %d is null", i)
		}
		if t.ID < 0 || t.ID >= len(env.Templates) || seen[t.ID] {
			return nil, fmt.Errorf("template ids not dense (id %d of %d)", t.ID, len(env.Templates))
		}
		seen[t.ID] = true
	}
	return helo.Restore(env.Threshold, env.Templates), nil
}
