package elsa

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/location"
)

// modelEnvelope is the on-disk form of a trained model. The format is
// versioned JSON: small enough to inspect by hand, stable enough to ship
// between the training host and the online monitor.
type modelEnvelope struct {
	Version   int                          `json:"version"`
	HELO      heloEnvelope                 `json:"helo"`
	Model     *correlate.Model             `json:"model"`
	Locations map[string]*location.Profile `json:"locations"`
}

type heloEnvelope struct {
	Threshold float64          `json:"threshold"`
	Templates []*helo.Template `json:"templates"`
}

// modelFormatVersion increments on breaking changes to the envelope.
const modelFormatVersion = 1

// Save serialises the model as versioned JSON.
func (m *Model) Save(w io.Writer) error {
	env := modelEnvelope{
		Version: modelFormatVersion,
		HELO: heloEnvelope{
			Threshold: m.organizer.Threshold(),
			Templates: m.organizer.Templates(),
		},
		Model:     m.inner,
		Locations: m.profiles,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(env); err != nil {
		return fmt.Errorf("elsa: save model: %w", err)
	}
	return nil
}

// LoadModel deserialises a model written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	var env modelEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("elsa: load model: %w", err)
	}
	if env.Version != modelFormatVersion {
		return nil, fmt.Errorf("elsa: model format version %d, want %d", env.Version, modelFormatVersion)
	}
	if env.Model == nil {
		return nil, fmt.Errorf("elsa: model envelope missing model")
	}
	if env.Model.Profiles == nil || env.Model.Thresholds == nil || env.Model.Severity == nil {
		return nil, fmt.Errorf("elsa: model envelope incomplete")
	}
	return &Model{
		inner:     env.Model,
		profiles:  env.Locations,
		organizer: helo.Restore(env.HELO.Threshold, env.HELO.Templates),
	}, nil
}
