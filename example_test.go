package elsa_test

import (
	"fmt"
	"time"

	elsa "github.com/elsa-hpc/elsa"
)

// The checkpoint model reproduces the paper's Table IV arithmetic: a
// predictor with the paper's quality cuts the waste of a 1-day-MTTF
// platform by about a fifth.
func Example_checkpointModel() {
	p := elsa.PaperCheckpointParams(time.Minute, 24*time.Hour)
	pred := elsa.CheckpointPredictor{Recall: 0.458, Precision: 0.912}

	fmt.Printf("Young interval: %s\n", elsa.YoungInterval(p).Round(time.Second))
	fmt.Printf("waste without prediction: %.2f%%\n", 100*elsa.MinCheckpointWaste(p))
	fmt.Printf("waste with prediction:    %.2f%%\n", 100*elsa.MinWasteWithPrediction(p, pred))
	fmt.Printf("gain: %.2f%%\n", 100*elsa.CheckpointWasteGain(p, pred))
	// Output:
	// Young interval: 53m40s
	// waste without prediction: 4.14%
	// waste with prediction:    3.20%
	// gain: 22.88%
}

// Location codes follow the Blue Gene convention: prefixes of the full
// code name coarser components, and the scope lattice relates them.
func Example_locationCodes() {
	node, _ := elsa.ParseLocation("R12-M1-N03-C:J07-U01")
	fmt.Println("node:", node)
	fmt.Println("its node card:", node.Truncate(1)) // ScopeNodeCard
	fmt.Println("its midplane:", node.Truncate(2))  // ScopeMidplane

	card, _ := elsa.ParseLocation("R12-M1-N03")
	fmt.Println("card contains node:", card.Contains(node))
	// Output:
	// node: R12-M1-N3-C:J07-U01
	// its node card: R12-M1-N3
	// its midplane: R12-M1
	// card contains node: true
}

// Absence detection catches components that fail silently: feed the
// heartbeats you have, poll for the ones you stopped getting.
func Example_absenceDetection() {
	start := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	mon := elsa.NewAbsenceMonitor(elsa.HeartbeatWatch{
		Event:         7,
		Period:        time.Minute,
		MissThreshold: 3,
	})
	rack, _ := elsa.ParseLocation("R05")
	// Five healthy beats, then silence.
	for i := 0; i < 5; i++ {
		mon.Observe(elsa.Record{
			Time:     start.Add(time.Duration(i) * time.Minute),
			EventID:  7,
			Location: rack,
		})
	}
	if alerts := mon.Check(start.Add(5 * time.Minute)); len(alerts) == 0 {
		fmt.Println("healthy: no alerts one beat after the last")
	}
	for _, a := range mon.Check(start.Add(8 * time.Minute)) {
		fmt.Printf("silent: %s missed %d beats\n", a.Location, a.Missed)
	}
	// Output:
	// healthy: no alerts one beat after the last
	// silent: R05 missed 4 beats
}
