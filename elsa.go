// Package elsa is the public API of the ELSA hybrid fault-prediction
// toolkit, a reproduction of "Fault prediction under the microscope: a
// closer look into HPC systems" (Gainaru, Cappello, Snir, Kramer —
// SC 2012).
//
// The pipeline has two phases. The offline phase takes a training window
// of system-log records, mines message templates (event types), extracts a
// signal per event type, characterises each signal as periodic, noise or
// silent, filters outliers, and grows correlation chains by feeding
// cross-correlation seed pairs into a gradual-itemset miner; a location
// pass then learns each chain's propagation behaviour. The online phase
// streams new records through per-signal outlier filters and matches
// outliers against the chains, emitting predictions that carry the
// expected failure time, the visible prediction window (net of analysis
// time) and the predicted location scope.
//
// Minimal usage:
//
//	log := elsa.GenerateBGL(42, start, 10*24*time.Hour) // or load real records
//	train, test, truth := log.Split(start.Add(3 * 24 * time.Hour))
//	model := elsa.Train(train, start, start.Add(3*24*time.Hour), elsa.DefaultTrainConfig())
//	result := model.Predict(test, model.TrainEnd(), log.End)
//	outcome := elsa.Evaluate(result, truth, elsa.DefaultMatchConfig())
//	fmt.Println(outcome)
package elsa

import (
	"context"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/evaluate"
	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/location"
	"github.com/elsa-hpc/elsa/internal/logs"
	"github.com/elsa-hpc/elsa/internal/pipeline"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// Core data types, re-exported for downstream users.
type (
	// Record is one parsed log line.
	Record = logs.Record
	// Severity grades a record (INFO .. FAILURE).
	Severity = logs.Severity
	// Location identifies a hardware component.
	Location = topology.Location
	// Scope is a machine-hierarchy level (node .. system).
	Scope = topology.Scope
	// Prediction is one emitted failure forecast.
	Prediction = predict.Prediction
	// PredictResult bundles predictions with run statistics.
	PredictResult = predict.Result
	// StageStats is one pipeline stage's counter snapshot (records in and
	// out, drops, max queue depth, wall time); a run's stage counters are
	// in PredictResult.Stats.Stages.
	StageStats = predict.StageStats
	// RecordSource is a pull-based record iterator: PredictSource and the
	// pipeline consume sources, so callers never need the whole log in
	// memory.
	RecordSource = logs.RecordSource
	// Failure is a ground-truth fault instance (from the generator or an
	// annotated real log).
	Failure = gen.FailureRecord
	// Outcome is an evaluation result (precision, recall, breakdowns).
	Outcome = evaluate.Outcome
	// MatchConfig tunes prediction-to-failure matching.
	MatchConfig = evaluate.MatchConfig
	// Mode selects the correlation method.
	Mode = correlate.Mode
	// Chain is one extracted correlation sequence.
	Chain = correlate.Chain
)

// Severity levels.
const (
	Info            = logs.Info
	Warning         = logs.Warning
	Error           = logs.Error
	Severe          = logs.Severe
	FailureSeverity = logs.Failure
)

// Correlation methods (the three rows of the paper's Table III).
const (
	Hybrid         = correlate.Hybrid
	SignalOnly     = correlate.SignalOnly
	DataMiningOnly = correlate.DataMiningOnly
)

// TrainConfig bundles the offline-phase parameters.
type TrainConfig struct {
	// Mode selects the correlation method (default Hybrid).
	Mode Mode
	// Correlation tunes signal extraction, outlier calibration, seeding
	// and mining.
	Correlation correlate.Config
	// HELOThreshold is the template-merge similarity (0 = default).
	HELOThreshold float64
}

// DefaultTrainConfig returns the configuration used in the paper
// reproduction experiments.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Mode: Hybrid, Correlation: correlate.DefaultConfig()}
}

// Model is a trained fault-prediction model: correlation chains, per-event
// behaviour profiles and propagation profiles, plus the template organizer
// that keeps assigning event ids online.
type Model struct {
	inner     *correlate.Model
	profiles  map[string]*location.Profile
	organizer *helo.Organizer
	// trainCfg is the offline-phase configuration the model was trained
	// with; incremental refresh re-derives chains under the same
	// parameters. Loaded models fall back to the defaults.
	trainCfg TrainConfig
}

// Train builds a model from training records covering [start, end).
// Records may be in any order and need not carry event ids; Train sorts
// them and runs template mining itself.
func Train(records []Record, start, end time.Time, cfg TrainConfig) *Model {
	recs := append([]Record(nil), records...)
	logs.SortByTime(recs)
	org := helo.New(cfg.HELOThreshold)
	org.Assign(recs)
	m := correlate.Train(recs, start, end, cfg.Mode, cfg.Correlation)
	profiles := location.Extract(recs, m.Chains, start, m.Step, 1)
	return &Model{inner: m, profiles: profiles, organizer: org, trainCfg: cfg}
}

// Mode returns the correlation method the model was trained with.
func (m *Model) Mode() Mode { return m.inner.Mode }

// TrainEnd returns the end of the training window.
func (m *Model) TrainEnd() time.Time { return m.inner.TrainEnd }

// Chains returns every extracted correlation chain.
func (m *Model) Chains() []Chain { return m.inner.Chains }

// PredictiveChains returns the chains usable for failure prediction (at
// least one non-informational event type).
func (m *Model) PredictiveChains() []Chain { return m.inner.PredictiveChains() }

// EventTemplate returns the mined template text for an event id.
func (m *Model) EventTemplate(event int) string {
	ts := m.organizer.Templates()
	if event < 0 || event >= len(ts) {
		return ""
	}
	return ts[event].String()
}

// EventCount returns the number of event types mined during training.
func (m *Model) EventCount() int { return m.organizer.Len() }

// PredictConfig re-exports the online engine configuration.
type PredictConfig = predict.Config

// DefaultPredictConfig returns the engine parameters used in the
// reproduction experiments.
func DefaultPredictConfig() PredictConfig { return predict.DefaultConfig() }

// Predict streams records through the online phase over [start, end) with
// the default engine configuration. Records without event ids are stamped
// by the model's template organizer (which keeps learning new templates,
// as HELO does online).
//
// Batch prediction is a replay: the records run through the same
// internal/pipeline stage graph a live Monitor executes, driven from an
// in-memory source. The per-stage counters land in Stats.Stages.
func (m *Model) Predict(records []Record, start, end time.Time) *PredictResult {
	return m.PredictWith(records, start, end, DefaultPredictConfig())
}

// PredictWith is Predict with an explicit engine configuration.
func (m *Model) PredictWith(records []Record, start, end time.Time, cfg PredictConfig) *PredictResult {
	recs := append([]Record(nil), records...)
	logs.SortByTime(recs)
	// A slice source cannot fail and the background context never
	// cancels, so the replay always completes.
	res, _ := m.PredictSource(context.Background(), logs.NewSliceSource(recs), start, end, cfg)
	return res
}

// PredictSource streams records pulled from src through the online phase
// over [start, end) without materialising the log in memory. Records must
// arrive roughly in time order (the pipeline tolerates one sampling tick
// of lateness; older records are dropped and counted). On context
// cancellation or a source failure the partial result is returned
// alongside the error.
func (m *Model) PredictSource(ctx context.Context, src RecordSource, start, end time.Time, cfg PredictConfig) (*PredictResult, error) {
	engine := predict.NewEngine(m.inner, m.profiles, cfg)
	p := pipeline.New(engine, m.organizer, pipeline.DefaultConfig())
	return p.Run(ctx, src, start, end)
}

// DefaultMatchConfig returns the evaluation matching rule used in the
// experiments.
func DefaultMatchConfig() MatchConfig { return evaluate.DefaultMatchConfig() }

// Evaluate scores a prediction run against ground-truth failures.
func Evaluate(result *PredictResult, failures []Failure, cfg MatchConfig) *Outcome {
	return evaluate.Score(result, failures, cfg)
}
