package elsa

import (
	"time"

	"github.com/elsa-hpc/elsa/internal/update"
)

// UpdateConfig tunes the correlation-updating policy: how much history to
// retrain on, how often, and how quickly unconfirmed chains are retired.
type UpdateConfig = update.Config

// UpdateStats counts chain-set churn (rounds, added, renewed, retired).
type UpdateStats = update.Stats

// DefaultUpdateConfig returns a conservative policy: daily retraining on a
// two-week window, retirement after three unconfirmed rounds.
func DefaultUpdateConfig() UpdateConfig { return update.DefaultConfig() }

// Updater keeps a model current on a drifting system: it retrains on a
// sliding window and merges the result into the live chain set, so
// software upgrades and reconfigurations neither strand stale chains nor
// hide new failure modes. This implements the correlation-updating module
// the paper describes as untested future work.
type Updater struct {
	inner *update.Updater
	model *Model
}

// NewUpdater wraps a trained model with an updating policy.
func (m *Model) NewUpdater(cfg UpdateConfig) *Updater {
	return &Updater{inner: update.New(m.inner, cfg), model: m}
}

// Ingest feeds newly observed records (the updater stamps event ids via
// the model's template organizer) and retrains when the interval elapses.
// It reports whether the chain set changed.
func (u *Updater) Ingest(records []Record, now time.Time) bool {
	recs := append([]Record(nil), records...)
	for i := range recs {
		if recs[i].EventID < 0 {
			recs[i].EventID = u.model.organizer.Learn(recs[i].Message, recs[i].Severity).ID
		}
	}
	changed := u.inner.Ingest(recs, now)
	if changed {
		u.model.inner = u.inner.Model()
	}
	return changed
}

// Model returns the live model (shared with the wrapped *Model).
func (u *Updater) Model() *Model {
	u.model.inner = u.inner.Model()
	return u.model
}

// Stats returns churn counters.
func (u *Updater) Stats() UpdateStats { return u.inner.Stats() }
