package elsa

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func trainSmallModel(t *testing.T, seed int64) (*Model, *SyntheticLog, time.Time) {
	t.Helper()
	log := GenerateBGL(seed, apiStart, 5*24*time.Hour)
	cut := apiStart.Add(2 * 24 * time.Hour)
	train, _, _ := log.Split(cut)
	return Train(train, apiStart, cut, DefaultTrainConfig()), log, cut
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	model, log, cut := trainSmallModel(t, 60)
	var sb strings.Builder
	if err := model.Save(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Mode() != model.Mode() {
		t.Errorf("mode %v vs %v", back.Mode(), model.Mode())
	}
	if back.EventCount() != model.EventCount() {
		t.Errorf("events %d vs %d", back.EventCount(), model.EventCount())
	}
	if len(back.Chains()) != len(model.Chains()) {
		t.Fatalf("chains %d vs %d", len(back.Chains()), len(model.Chains()))
	}
	for i, c := range model.Chains() {
		if back.Chains()[i].Key() != c.Key() {
			t.Errorf("chain %d key %q vs %q", i, back.Chains()[i].Key(), c.Key())
		}
	}
	// Template text must survive.
	for id := 0; id < model.EventCount(); id++ {
		if back.EventTemplate(id) != model.EventTemplate(id) {
			t.Fatalf("template %d differs", id)
		}
	}
	// The reloaded model must predict identically.
	_, test, _ := log.Split(cut)
	a := model.Predict(test, cut, log.End)
	b := back.Predict(test, cut, log.End)
	if len(a.Predictions) != len(b.Predictions) {
		t.Fatalf("prediction counts differ after reload: %d vs %d",
			len(a.Predictions), len(b.Predictions))
	}
	for i := range a.Predictions {
		if a.Predictions[i] != b.Predictions[i] {
			t.Fatalf("prediction %d differs after reload", i)
		}
	}
}

func TestLoadModelRejectsBadInput(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"version": 1}`)); err == nil {
		t.Error("missing model accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"version":1,"model":{}}`)); err == nil {
		t.Error("incomplete model accepted")
	}
}

func TestLoadModelVersionMismatchIsTyped(t *testing.T) {
	var vErr *ErrVersionMismatch
	_, err := LoadModel(strings.NewReader(`{"version": 99}`))
	if !errors.As(err, &vErr) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
	if vErr.Got != 99 || vErr.Want != modelFormatVersion || vErr.Kind != "model" {
		t.Errorf("ErrVersionMismatch = %+v, want Got 99 / Want %d / Kind %q", vErr, modelFormatVersion, "model")
	}
	// The version probe runs before strict decoding: a future-format
	// file reports the mismatch, not whichever unknown field the strict
	// decoder would trip on first.
	_, err = LoadModel(strings.NewReader(`{"version": 2, "new_fangled": true}`))
	if !errors.As(err, &vErr) {
		t.Fatalf("future-format err = %v, want ErrVersionMismatch", err)
	}
}

func TestLoadModelRejectsUnknownFields(t *testing.T) {
	model, _, _ := trainSmallModel(t, 62)
	var sb strings.Builder
	if err := model.Save(&sb); err != nil {
		t.Fatal(err)
	}
	mangled := strings.Replace(sb.String(), `"helo"`, `"helo_typo"`, 1)
	if mangled == sb.String() {
		t.Fatal("could not mangle the envelope; layout changed?")
	}
	if _, err := LoadModel(strings.NewReader(mangled)); err == nil {
		t.Error("envelope with an unknown field accepted (state silently dropped)")
	}
}

func TestSavedModelIsStableJSON(t *testing.T) {
	model, _, _ := trainSmallModel(t, 61)
	var a, b strings.Builder
	if err := model.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := model.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Save is not deterministic")
	}
	if !strings.Contains(a.String(), `"version"`) {
		t.Error("envelope missing version field")
	}
}
