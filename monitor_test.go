package elsa

import (
	"testing"
	"time"
)

// feedOK feeds one record, failing the test on an unexpected error —
// the streaming tests never feed a closed monitor.
func feedOK(t *testing.T, mon *Monitor, r Record) []Prediction {
	t.Helper()
	preds, err := mon.Feed(r)
	if err != nil {
		t.Fatalf("Feed: %v", err)
	}
	return preds
}

func TestMonitorMatchesBatchPredict(t *testing.T) {
	log := GenerateBGL(80, apiStart, 6*24*time.Hour)
	cut := apiStart.Add(3 * 24 * time.Hour)
	train, test, _ := log.Split(cut)
	model := Train(train, apiStart, cut, DefaultTrainConfig())

	batch := model.Predict(test, cut, log.End)

	// A fresh equal model for the monitor (Predict mutates organizer
	// state by learning online; train it identically).
	model2 := Train(train, apiStart, cut, DefaultTrainConfig())
	mon := model2.NewMonitor(cut)
	var streamed []Prediction
	for _, r := range test {
		streamed = append(streamed, feedOK(t, mon, r)...)
	}
	streamed = append(streamed, mon.AdvanceTo(log.End)...)
	mon.Close()

	if len(streamed) != len(batch.Predictions) {
		t.Fatalf("monitor %d predictions vs batch %d", len(streamed), len(batch.Predictions))
	}
	for i := range streamed {
		if streamed[i] != batch.Predictions[i] {
			t.Fatalf("prediction %d differs", i)
		}
	}
}

func TestMonitorLearnsNewTemplates(t *testing.T) {
	log := GenerateBGL(81, apiStart, 2*24*time.Hour)
	model := Train(log.Records, apiStart, log.End, DefaultTrainConfig())
	before := model.EventCount()
	mon := model.NewMonitor(log.End)
	mon.Feed(Record{
		Time:     log.End.Add(time.Second),
		Severity: Severe,
		Message:  "previously unseen subsystem failure mode alpha",
		EventID:  -1,
	})
	if model.EventCount() != before+1 {
		t.Errorf("EventCount = %d, want %d", model.EventCount(), before+1)
	}
	if res := mon.Close(); res.Stats.Messages != 1 {
		t.Errorf("Messages = %d", res.Stats.Messages)
	}
}
