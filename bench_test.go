package elsa

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md. Each
// experiment bench regenerates its table/figure at the Quick scale and
// reports the headline numbers as custom metrics, so `go test -bench=.`
// doubles as the reproduction harness.

import (
	"testing"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/experiments"
	"github.com/elsa-hpc/elsa/internal/gen"
	"github.com/elsa-hpc/elsa/internal/gradual"
	"github.com/elsa-hpc/elsa/internal/helo"
	"github.com/elsa-hpc/elsa/internal/location"
	"github.com/elsa-hpc/elsa/internal/outlier"
	"github.com/elsa-hpc/elsa/internal/predict"
	"github.com/elsa-hpc/elsa/internal/sig"
)

func benchCampaign() *experiments.Campaign { return experiments.BGL(experiments.Quick) }

func BenchmarkFig1SignalClasses(b *testing.B) {
	c := benchCampaign()
	var r *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig1(c)
	}
	b.ReportMetric(float64(r.Counts[sig.Silent])/float64(r.Total)*100, "%silent")
	b.ReportMetric(float64(r.Total), "event-types")
}

func BenchmarkFig3OutlierFilter(b *testing.B) {
	var r *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3(int64(i + 1))
	}
	b.ReportMetric(float64(r.Detected)/float64(r.InjectedSpikes)*100, "%detected")
}

func BenchmarkFig4Binarise(b *testing.B) {
	var r *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig4(int64(i + 1))
	}
	b.ReportMetric(float64(r.RecoveredDelays["S1->S2"]), "delay-s1s2")
}

func BenchmarkTable1Sequences(b *testing.B) {
	c := benchCampaign()
	found := 0
	for i := 0; i < b.N; i++ {
		found = 0
		for _, s := range experiments.Table1(c).Sections {
			if s.Found {
				found++
			}
		}
	}
	b.ReportMetric(float64(found), "sections-found")
}

func BenchmarkFig5ChainSizes(b *testing.B) {
	c := benchCampaign()
	var r *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig5(c)
	}
	b.ReportMetric(r.Mean, "mean-size")
}

func BenchmarkFig6DelayDist(b *testing.B) {
	c := benchCampaign()
	var r *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig6(c)
	}
	b.ReportMetric(100*(r.Hist.MinuteToTen()+r.Hist.OverTenMin()), "%over-1min")
}

func BenchmarkPairDelays(b *testing.B) {
	c := benchCampaign()
	var r *experiments.PairDelaysResult
	for i := 0; i < b.N; i++ {
		r = experiments.PairDelays(c)
	}
	b.ReportMetric(100*r.NonPredictive, "%non-predictive")
}

func BenchmarkTable2Extremes(b *testing.B) {
	c := benchCampaign()
	var r *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table2(c)
	}
	b.ReportMetric(r.LongSpan.Minutes(), "long-span-min")
}

func BenchmarkFig7Propagation(b *testing.B) {
	c := benchCampaign()
	var r *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7(c)
	}
	b.ReportMetric(100*r.Breakdown.NoPropagate, "%no-propagation")
}

func BenchmarkAnalysisTime(b *testing.B) {
	c := benchCampaign()
	var r *experiments.AnalysisTimeResult
	for i := 0; i < b.N; i++ {
		r = experiments.AnalysisTime(c)
	}
	b.ReportMetric(r.BurstAnalysis.Seconds(), "burst-analysis-s")
}

func BenchmarkTable3Methods(b *testing.B) {
	c := benchCampaign()
	var r *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table3(c)
	}
	b.ReportMetric(100*r.Rows[0].Precision, "%hybrid-precision")
	b.ReportMetric(100*r.Rows[0].Recall, "%hybrid-recall")
}

func BenchmarkFig9Breakdown(b *testing.B) {
	c := benchCampaign()
	var r *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9(c)
	}
	b.ReportMetric(float64(len(r.Categories)), "categories")
}

func BenchmarkWindows(b *testing.B) {
	c := benchCampaign()
	var r *experiments.WindowsResult
	for i := 0; i < b.N; i++ {
		r = experiments.Windows(c)
	}
	b.ReportMetric(100*r.Over10s, "%over-10s")
}

func BenchmarkTable4Waste(b *testing.B) {
	c := benchCampaign()
	var r *experiments.Table4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table4(c)
	}
	b.ReportMetric(100*r.MeasuredGain, "%measured-gain")
}

func BenchmarkAppImpact(b *testing.B) {
	c := benchCampaign()
	var r *experiments.AppImpactResult
	for i := 0; i < b.N; i++ {
		r = experiments.AppImpact(c)
	}
	b.ReportMetric(r.Outcome.ReductionFactor, "loss-reduction-x")
}

// --- pipeline-stage benchmarks -------------------------------------------

var benchStart = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

// benchLog caches a one-day BG/L log for the stage benchmarks.
var benchLogCache *gen.Result

func benchLog() *gen.Result {
	if benchLogCache == nil {
		benchLogCache = gen.New(gen.BlueGeneL(), 1).Generate(benchStart, 24*time.Hour)
	}
	return benchLogCache
}

func BenchmarkHELOAssign(b *testing.B) {
	recs := benchLog().Records
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		org := helo.New(0)
		cp := append([]Record(nil), recs...)
		org.Assign(cp)
	}
	b.ReportMetric(float64(len(recs)), "records")
}

func BenchmarkTrainHybrid(b *testing.B) {
	log := benchLog()
	recs := append([]Record(nil), log.Records...)
	helo.New(0).Assign(recs)
	b.ReportAllocs()
	b.ResetTimer()
	var model *correlate.Model
	for i := 0; i < b.N; i++ {
		model = correlate.Train(recs, log.Start, log.End, correlate.Hybrid, correlate.DefaultConfig())
	}
	b.ReportMetric(float64(model.Stats.Pairs.Scored), "pairs-scored")
	b.ReportMetric(float64(model.Stats.Pairs.Pruned()), "pairs-pruned")
}

func BenchmarkOnlineEngine(b *testing.B) {
	log := benchLog()
	recs := append([]Record(nil), log.Records...)
	helo.New(0).Assign(recs)
	model := correlate.Train(recs, log.Start, log.End, correlate.Hybrid, correlate.DefaultConfig())
	profiles := location.Extract(recs, model.Chains, log.Start, model.Step, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine := predict.NewEngine(model, profiles, predict.DefaultConfig())
		engine.Run(recs, log.Start, log.End)
	}
	b.ReportMetric(float64(len(recs)), "records")
}

// --- ablation benchmarks --------------------------------------------------

// BenchmarkAblationSeedLevel compares mining seeded by the
// cross-correlation pairs (the hybrid design) against a cold start where
// the seed filter is effectively disabled, measuring the cost the signal
// stage saves the miner.
func BenchmarkAblationSeedLevel(b *testing.B) {
	log := benchLog()
	recs := append([]Record(nil), log.Records...)
	helo.New(0).Assign(recs)
	horizon := int(log.End.Sub(log.Start) / sig.DefaultStep)
	trains := make(sig.SpikeTrains)
	for _, r := range recs {
		t := int(r.Time.Sub(log.Start) / sig.DefaultStep)
		tr := trains[r.EventID]
		if len(tr) == 0 || tr[len(tr)-1] != t {
			trains[r.EventID] = append(tr, t)
		}
	}
	for _, variant := range []struct {
		name string
		cc   sig.CrossCorrConfig
	}{
		{"seeded", sig.DefaultCrossCorrConfig()},
		{"coldstart", sig.CrossCorrConfig{MaxLag: 360, MinCount: 2, MinScore: 0.01, Tolerance: 1}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var chains int
			for i := 0; i < b.N; i++ {
				seeds := sig.AllPairs(trains, variant.cc)
				sets := gradual.Mine(trains, seeds, gradual.DefaultConfig(horizon))
				chains = len(sets)
			}
			b.ReportMetric(float64(chains), "chains")
		})
	}
}

// BenchmarkAblationReplacement measures burst robustness with and without
// the median-replacement strategy: the fraction of a long fault burst
// still flagged as outliers.
func BenchmarkAblationReplacement(b *testing.B) {
	for _, replace := range []bool{true, false} {
		name := "replace"
		if !replace {
			name = "noreplace"
		}
		b.Run(name, func(b *testing.B) {
			flagged := 0
			for i := 0; i < b.N; i++ {
				d := outlier.NewDetector(100, 3)
				d.ReplaceOutliers = replace
				for j := 0; j < 200; j++ {
					d.Observe(5)
				}
				flagged = 0
				for j := 0; j < 150; j++ {
					if d.Observe(50).Outlier {
						flagged++
					}
				}
			}
			b.ReportMetric(float64(flagged)/150*100, "%burst-flagged")
		})
	}
}

// BenchmarkAblationLocation compares precision with and without location
// prediction (the paper reports ~94% without checking locations vs 91.2%
// with).
func BenchmarkAblationLocation(b *testing.B) {
	c := benchCampaign()
	model := c.Model(correlate.Hybrid)
	profiles := c.LocationProfiles(correlate.Hybrid)
	test := c.TestRecords()
	failures := c.TestFailures()
	for _, useLoc := range []bool{true, false} {
		name := "with-location"
		if !useLoc {
			name = "without-location"
		}
		b.Run(name, func(b *testing.B) {
			var precision float64
			for i := 0; i < b.N; i++ {
				cfg := predict.DefaultConfig()
				cfg.UseLocation = useLoc
				res := predict.NewEngine(model, profiles, cfg).Run(test, c.Cut(), c.Log().End)
				mcfg := DefaultMatchConfig()
				mcfg.RequireLocation = useLoc
				precision = Evaluate(res, failures, mcfg).Precision
			}
			b.ReportMetric(100*precision, "%precision")
		})
	}
}

// BenchmarkAblationAdaptiveWindows compares the static span-proportional
// match window against the per-chain windows learned online.
func BenchmarkAblationAdaptiveWindows(b *testing.B) {
	c := benchCampaign()
	run := c.Run(correlate.Hybrid)
	failures := c.TestFailures()
	for _, adaptive := range []bool{false, true} {
		name := "static"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			var precision, recall float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultMatchConfig()
				cfg.AdaptiveWindows = adaptive
				out := Evaluate(run, failures, cfg)
				precision, recall = out.Precision, out.Recall
			}
			b.ReportMetric(100*precision, "%precision")
			b.ReportMetric(100*recall, "%recall")
		})
	}
}

// BenchmarkAblationDelayTolerance sweeps the join/matching base tolerance.
func BenchmarkAblationDelayTolerance(b *testing.B) {
	log := benchLog()
	recs := append([]Record(nil), log.Records...)
	helo.New(0).Assign(recs)
	horizon := int(log.End.Sub(log.Start) / sig.DefaultStep)
	trains := make(sig.SpikeTrains)
	for _, r := range recs {
		t := int(r.Time.Sub(log.Start) / sig.DefaultStep)
		tr := trains[r.EventID]
		if len(tr) == 0 || tr[len(tr)-1] != t {
			trains[r.EventID] = append(tr, t)
		}
	}
	seeds := sig.AllPairs(trains, sig.DefaultCrossCorrConfig())
	for _, tol := range []int{0, 1, 3} {
		b.Run(map[int]string{0: "tol0", 1: "tol1", 3: "tol3"}[tol], func(b *testing.B) {
			var chains int
			for i := 0; i < b.N; i++ {
				cfg := gradual.DefaultConfig(horizon)
				cfg.DelayTolerance = tol
				chains = len(gradual.Mine(trains, seeds, cfg))
			}
			b.ReportMetric(float64(chains), "chains")
		})
	}
}

// BenchmarkAblationOutlierK sweeps the outlier threshold multiplier:
// lower K flags more outliers (more chains, more noise), higher K fewer.
func BenchmarkAblationOutlierK(b *testing.B) {
	log := benchLog()
	recs := append([]Record(nil), log.Records...)
	helo.New(0).Assign(recs)
	for _, k := range []float64{1.5, 3, 6} {
		b.Run(map[float64]string{1.5: "k1.5", 3: "k3", 6: "k6"}[k], func(b *testing.B) {
			var chains int
			for i := 0; i < b.N; i++ {
				cfg := correlate.DefaultConfig()
				cfg.OutlierK = k
				model := correlate.Train(recs, log.Start, log.End, correlate.Hybrid, cfg)
				chains = len(model.Chains)
			}
			b.ReportMetric(float64(chains), "chains")
		})
	}
}

// BenchmarkAllPairs measures the cross-correlation seeding stage alone.
func BenchmarkAllPairs(b *testing.B) {
	log := benchLog()
	recs := append([]Record(nil), log.Records...)
	helo.New(0).Assign(recs)
	trains := make(sig.SpikeTrains)
	for _, r := range recs {
		t := int(r.Time.Sub(log.Start) / sig.DefaultStep)
		tr := trains[r.EventID]
		if len(tr) == 0 || tr[len(tr)-1] != t {
			trains[r.EventID] = append(tr, t)
		}
	}
	cfg := sig.DefaultCrossCorrConfig()
	b.ReportAllocs()
	b.ResetTimer()
	var pairs int
	var st sig.PairStats
	for i := 0; i < b.N; i++ {
		var out []sig.PairCorrelation
		out, st = sig.AllPairsStats(trains, cfg)
		pairs = len(out)
	}
	b.ReportMetric(float64(pairs), "pairs")
	b.ReportMetric(float64(st.Pruned()), "pairs-pruned")
}

// BenchmarkAblationHistoryTrim compares the online filter cost at the
// default 6-hour window against the paper's full two-month window.
func BenchmarkAblationHistoryTrim(b *testing.B) {
	for _, w := range []struct {
		name   string
		window int
	}{
		{"6h-window", 2160},
		{"2day-window", 17280},
		{"2month-window", 518400},
	} {
		b.Run(w.name, func(b *testing.B) {
			d := outlier.NewDetector(w.window, 3)
			for i := 0; i < w.window && i < 100000; i++ {
				d.Observe(float64(i % 7))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Observe(float64(i % 7))
			}
		})
	}
}
