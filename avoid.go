package elsa

import (
	"time"

	"github.com/elsa-hpc/elsa/internal/avoid"
	"github.com/elsa-hpc/elsa/internal/jobs"
	"github.com/elsa-hpc/elsa/internal/topology"
)

// Failure-avoidance types, re-exported for the consumer side of
// prediction: deciding what to do with a forecast.
type (
	// Job is one parallel application run occupying a node set.
	Job = jobs.Job
	// AvoidanceAction is the measure recommended for a prediction
	// (migrate, checkpoint in place, or nothing).
	AvoidanceAction = avoid.Action
	// AvoidanceConfig is the cost model of the avoidance measures.
	AvoidanceConfig = avoid.Config
	// Recommendation is the advisor's output for one prediction.
	Recommendation = avoid.Recommendation
	// WorkloadConfig shapes a synthetic job mix.
	WorkloadConfig = jobs.WorkloadConfig
)

// Avoidance actions.
const (
	NoAction       = avoid.NoAction
	CheckpointOnly = avoid.CheckpointOnly
	Migrate        = avoid.Migrate
)

// DefaultAvoidanceConfig returns costs consistent with the paper's
// discussion (about a minute to checkpoint, several to migrate).
func DefaultAvoidanceConfig() AvoidanceConfig { return avoid.DefaultConfig() }

// Advise decides the avoidance measure for one prediction given the
// active jobs on the machine.
func Advise(m topology.Machine, active []Job, pred Prediction, cfg AvoidanceConfig) Recommendation {
	return avoid.Advise(m, active, pred, cfg)
}

// DefaultWorkload returns a job mix reminiscent of the paper's systems.
func DefaultWorkload() WorkloadConfig { return jobs.DefaultWorkload() }

// GenerateWorkload creates a synthetic job mix over [start, end).
func GenerateWorkload(m topology.Machine, start, end time.Time, cfg WorkloadConfig) []Job {
	return jobs.GenerateWorkload(m, start, end, cfg)
}
