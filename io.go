package elsa

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/elsa-hpc/elsa/internal/logs"
)

// ReadLog decodes a canonical text log ("RFC3339Nano SEVERITY LOCATION
// COMPONENT message..." per line; blank and '#' lines skipped).
func ReadLog(r io.Reader) ([]Record, error) { return logs.ReadAll(r) }

// SortRecords orders records chronologically (stable). Adapter-imported
// logs are not guaranteed to be time-sorted.
func SortRecords(recs []Record) { logs.SortByTime(recs) }

// WriteLog encodes records in the canonical text format.
func WriteLog(w io.Writer, recs []Record) error { return logs.WriteAll(w, recs) }

// WriteFailures encodes ground-truth failures as JSON lines.
func WriteFailures(w io.Writer, failures []Failure) error {
	enc := json.NewEncoder(w)
	for i, f := range failures {
		if err := enc.Encode(f); err != nil {
			return fmt.Errorf("elsa: failure %d: %w", i, err)
		}
	}
	return nil
}

// ReadFailures decodes JSON-lines ground truth written by WriteFailures.
func ReadFailures(r io.Reader) ([]Failure, error) {
	dec := json.NewDecoder(r)
	var out []Failure
	for {
		var f Failure
		if err := dec.Decode(&f); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("elsa: failure %d: %w", len(out), err)
		}
		out = append(out, f)
	}
}
