// Failure analysis: the system-administrator workload from the paper's
// introduction — characterise a machine's event types, inspect the
// correlation chains (which event sequences herald which failures, with
// what lead time) and their propagation behaviour.
//
// Run with: go run ./examples/failure_analysis
package main

import (
	"fmt"
	"sort"
	"time"

	elsa "github.com/elsa-hpc/elsa"
)

func main() {
	start := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	log := elsa.GenerateBGL(7, start, 6*24*time.Hour)
	model := elsa.Train(log.Records, start, log.End, elsa.DefaultTrainConfig())

	fmt.Printf("=== %d event types mined from %d records ===\n\n", model.EventCount(), len(log.Records))

	chains := model.Chains()
	sort.Slice(chains, func(i, j int) bool { return chains[i].Span() > chains[j].Span() })

	fmt.Println("=== correlation chains, longest lead first ===")
	for _, ch := range chains {
		lead := time.Duration(ch.Span()) * 10 * time.Second
		kind := "informational"
		if ch.Predictive {
			kind = "PREDICTIVE"
		}
		fmt.Printf("\n%s chain — lead %s, support %d, confidence %.0f%%\n",
			kind, lead, ch.Support, 100*ch.Confidence)
		for i, it := range ch.Items {
			prefix := "first "
			if i > 0 {
				prefix = fmt.Sprintf("+%-5s", time.Duration(it.Delay)*10*time.Second)
			}
			fmt.Printf("  %s  %s\n", prefix, model.EventTemplate(it.Event))
		}
	}

	// Fault-avoidance guidance: which failures leave enough time to act?
	fmt.Println("\n=== actionability ===")
	for _, ch := range chains {
		if !ch.Predictive {
			continue
		}
		lead := time.Duration(ch.Span()) * 10 * time.Second
		switch {
		case lead >= time.Hour:
			fmt.Printf("  %-22s lead %-9s -> full job migration possible\n", head(model, ch), lead)
		case lead >= time.Minute:
			fmt.Printf("  %-22s lead %-9s -> checkpoint + local restart\n", head(model, ch), lead)
		case lead > 10*time.Second:
			fmt.Printf("  %-22s lead %-9s -> fast (FTI-style) checkpoint only\n", head(model, ch), lead)
		default:
			fmt.Printf("  %-22s lead %-9s -> no proactive action possible\n", head(model, ch), lead)
		}
	}
}

// head returns a short label for a chain: the first words of its terminal
// event template.
func head(model *elsa.Model, ch elsa.Chain) string {
	t := model.EventTemplate(ch.Last().Event)
	if len(t) > 22 {
		t = t[:22]
	}
	return t
}
