// Checkpoint advisor: the fault-tolerance planning scenario of the
// paper's Section VI.B — given a predictor's measured precision and
// recall, how much checkpoint-restart waste does failure avoidance save
// across platforms, and does a discrete-event simulation agree with the
// analytic model (equations 1-7)?
//
// Run with: go run ./examples/checkpoint_advisor
package main

import (
	"fmt"
	"math"
	"time"

	elsa "github.com/elsa-hpc/elsa"
)

func main() {
	// The paper's Table IV predictor quality.
	pred := elsa.CheckpointPredictor{Recall: 0.458, Precision: 0.912}
	fmt.Printf("predictor: recall %.1f%%, precision %.1f%%\n\n",
		100*pred.Recall, 100*pred.Precision)

	fmt.Println("platform sweep (R=5min, D=1min):")
	fmt.Printf("  %-10s %-10s %12s %12s %10s\n", "C", "MTTF", "waste(base)", "waste(pred)", "gain")
	for _, c := range []time.Duration{time.Minute, 10 * time.Second} {
		for _, mttf := range []time.Duration{24 * time.Hour, 5 * time.Hour, time.Hour} {
			p := elsa.PaperCheckpointParams(c, mttf)
			base := elsa.MinCheckpointWaste(p)
			with := elsa.MinWasteWithPrediction(p, pred)
			fmt.Printf("  %-10s %-10s %11.2f%% %11.2f%% %9.2f%%\n",
				c, mttf, 100*base, 100*with, 100*elsa.CheckpointWasteGain(p, pred))
		}
	}

	// Cross-check the closed forms with the event simulator.
	fmt.Println("\nanalytic model vs discrete-event simulation (C=1min, MTTF=5h, 200 days of work):")
	p := elsa.PaperCheckpointParams(time.Minute, 5*time.Hour)
	work := 200 * 24 * time.Hour

	baseSim := elsa.SimulateCheckpointing(p, elsa.CheckpointPredictor{}, elsa.YoungInterval(p), work, 1)
	fmt.Printf("  no prediction:  analytic %.2f%%  simulated %.2f%%  (%d failures)\n",
		100*elsa.MinCheckpointWaste(p), 100*baseSim.Waste, baseSim.Failures)

	interval := optimalInterval(p, pred)
	predSim := elsa.SimulateCheckpointing(p, pred, interval, work, 2)
	fmt.Printf("  with prediction: analytic %.2f%%  simulated %.2f%%  (%d predicted, %d false alarms)\n",
		100*elsa.MinWasteWithPrediction(p, pred), 100*predSim.Waste,
		predSim.Predicted, predSim.FalseAlarms)

	// Recommendation logic: when does prediction pay for itself?
	fmt.Println("\nrecall needed for a 20% waste gain at C=1min:")
	for _, mttf := range []time.Duration{24 * time.Hour, 12 * time.Hour, 5 * time.Hour} {
		pp := elsa.PaperCheckpointParams(time.Minute, mttf)
		for n := 0.05; n <= 1.0; n += 0.05 {
			g := elsa.CheckpointWasteGain(pp, elsa.CheckpointPredictor{Recall: n, Precision: 0.92})
			if g >= 0.20 {
				fmt.Printf("  MTTF %-9s -> recall >= %.0f%%\n", mttf, 100*n)
				break
			}
			if n > 0.99 {
				fmt.Printf("  MTTF %-9s -> unreachable at 92%% precision\n", mttf)
			}
		}
	}
}

// optimalInterval mirrors equation (4): sqrt(2 C MTTF / (1-N)).
func optimalInterval(p elsa.CheckpointParams, pred elsa.CheckpointPredictor) time.Duration {
	base := elsa.YoungInterval(p)
	if pred.Recall >= 1 {
		return base * 1000
	}
	scale := 1 / (1 - pred.Recall)
	return time.Duration(float64(base) * math.Sqrt(scale))
}
