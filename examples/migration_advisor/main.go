// Migration advisor: the failure-avoidance scenario the paper motivates —
// when the predictor forecasts a failure at a location, decide per
// prediction whether to migrate the affected tasks off the failure-prone
// components (long windows), checkpoint them in place (short windows), or
// accept the hit (no window), and count the node-hours each choice
// protects.
//
// Run with: go run ./examples/migration_advisor
package main

import (
	"fmt"
	"time"

	elsa "github.com/elsa-hpc/elsa"
)

func main() {
	start := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	log := elsa.GenerateBGL(17, start, 7*24*time.Hour)
	cut := start.Add(3 * 24 * time.Hour)
	train, test, _ := log.Split(cut)

	model := elsa.Train(train, start, cut, elsa.DefaultTrainConfig())
	result := model.Predict(test, cut, log.End)
	machine := elsa.BlueGeneLMachine()
	// Capability machines run near-full: large allocations, steady
	// arrivals (~70% node utilisation).
	wl := elsa.DefaultWorkload()
	wl.ArrivalMean = 4 * time.Minute
	wl.MeanNodes = 512
	workload := elsa.GenerateWorkload(machine, cut, log.End, wl)
	cfg := elsa.DefaultAvoidanceConfig()

	fmt.Printf("%d predictions over %d jobs\n\n", len(result.Predictions), len(workload))

	counts := map[elsa.AvoidanceAction]int{}
	saved := map[elsa.AvoidanceAction]float64{}
	shown := 0
	for _, p := range result.Predictions {
		if p.Late() {
			counts[elsa.NoAction]++
			continue
		}
		// Jobs active when the prediction is issued.
		var active []elsa.Job
		for _, j := range workload {
			if j.Start.Before(p.ExpectedAt) && j.End.After(p.IssuedAt) {
				active = append(active, j)
			}
		}
		rec := elsa.Advise(machine, active, p, cfg)
		counts[rec.Action]++
		saved[rec.Action] += rec.SavedNodeHours
		if shown < 8 && rec.Action != elsa.NoAction {
			shown++
			fmt.Printf("[%s] %s at %s (scope %s, lead %s)\n",
				rec.Action, short(model.EventTemplate(p.Event)), p.Trigger,
				p.Scope, p.Lead.Round(time.Second))
			fmt.Printf("        %d jobs affected, %.0f node-hours at stake",
				len(rec.Affected), rec.SavedNodeHours)
			if rec.Action == elsa.Migrate {
				fmt.Printf(", first target %s", rec.Targets[0])
			}
			fmt.Println()
		}
	}

	fmt.Println("\n=== action mix ===")
	for _, a := range []elsa.AvoidanceAction{elsa.Migrate, elsa.CheckpointOnly, elsa.NoAction} {
		verdict := "node-hours protected"
		if a == elsa.NoAction {
			verdict = "node-hours exposed (window too short)"
		}
		fmt.Printf("  %-12s %4d predictions  %8.0f %s\n", a, counts[a], saved[a], verdict)
	}
}

func short(s string) string {
	if len(s) > 44 {
		return s[:44] + "..."
	}
	return s
}
