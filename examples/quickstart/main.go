// Quickstart: generate a synthetic Blue Gene/L-style log, train the hybrid
// prediction model on the first days, predict failures in the rest, and
// score the predictions against ground truth.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	elsa "github.com/elsa-hpc/elsa"
)

func main() {
	start := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

	// Ten days of system life: background daemons, fault cascades, bursts.
	log := elsa.GenerateBGL(42, start, 10*24*time.Hour)
	fmt.Printf("generated %d records, %d real failures\n", len(log.Records), len(log.Failures))

	// Train on the first four days.
	cut := start.Add(4 * 24 * time.Hour)
	train, test, truth := log.Split(cut)
	model := elsa.Train(train, start, cut, elsa.DefaultTrainConfig())
	fmt.Printf("mined %d event types, %d correlation chains (%d predictive)\n",
		model.EventCount(), len(model.Chains()), len(model.PredictiveChains()))

	// Show one chain with its message templates.
	for _, ch := range model.PredictiveChains() {
		if ch.Size() >= 3 {
			fmt.Println("\nexample chain:")
			for _, it := range ch.Items {
				fmt.Printf("  +%-6s %s\n", time.Duration(it.Delay)*10*time.Second, model.EventTemplate(it.Event))
			}
			break
		}
	}

	// Online phase over the remaining days.
	result := model.Predict(test, cut, log.End)
	fmt.Printf("\nemitted %d predictions (%d too late to act on)\n",
		len(result.Predictions), result.Stats.LatePreds)

	// Score against ground truth.
	outcome := elsa.Evaluate(result, truth, elsa.DefaultMatchConfig())
	fmt.Printf("\n%s", outcome)

	// What the predictor is worth to a checkpointing system (paper eq 7).
	p := elsa.PaperCheckpointParams(time.Minute, 24*time.Hour)
	pred := elsa.CheckpointPredictor{Recall: outcome.Recall, Precision: outcome.Precision}
	fmt.Printf("\ncheckpoint waste gain on a 1-day-MTTF system: %.1f%%\n",
		100*elsa.CheckpointWasteGain(p, pred))
}
