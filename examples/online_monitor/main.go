// Online monitor: the operations-centre scenario — a model trained on
// history watches the live stream day by day, raising failure forecasts
// with their visible prediction window and location scope while tracking
// the analysis-time budget (the paper's Section VI.A concern: predictions
// are only useful if the analysis itself is fast enough).
//
// Run with: go run ./examples/online_monitor
package main

import (
	"fmt"
	"time"

	elsa "github.com/elsa-hpc/elsa"
)

func main() {
	start := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	log := elsa.GenerateBGL(99, start, 7*24*time.Hour)
	cut := start.Add(3 * 24 * time.Hour)
	train, test, _ := log.Split(cut)

	model := elsa.Train(train, start, cut, elsa.DefaultTrainConfig())
	fmt.Printf("monitor armed with %d predictive chains\n\n", len(model.PredictiveChains()))

	// Replay the live stream one day at a time, as an ops shift would see
	// it.
	for day := 0; ; day++ {
		dayStart := cut.Add(time.Duration(day) * 24 * time.Hour)
		dayEnd := dayStart.Add(24 * time.Hour)
		if !dayStart.Before(log.End) {
			break
		}
		if dayEnd.After(log.End) {
			dayEnd = log.End
		}
		var window []elsa.Record
		for _, r := range test {
			if !r.Time.Before(dayStart) && r.Time.Before(dayEnd) {
				window = append(window, r)
			}
		}
		result := model.Predict(window, dayStart, dayEnd)
		st := result.Stats

		fmt.Printf("=== shift %s: %d msgs, mean analysis %.1f ms, worst %s ===\n",
			dayStart.Format("Jan 02"), st.Messages,
			1000*st.Analysis.Mean(), st.MaxAnalysis.Round(time.Millisecond))
		for _, p := range result.Predictions {
			if p.Late() {
				fmt.Printf("  [too late] %s (analysis %s ate the window)\n",
					short(model.EventTemplate(p.Event)), p.AnalysisTime.Round(time.Millisecond))
				continue
			}
			fmt.Printf("  [%s lead] %s @ %s (scope %s)\n",
				p.Lead.Round(time.Second), short(model.EventTemplate(p.Event)),
				p.Trigger, p.Scope)
		}
	}
}

func short(s string) string {
	if len(s) > 46 {
		return s[:46] + "..."
	}
	return s
}
