package elsa

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/elsa-hpc/elsa/internal/correlate"
	"github.com/elsa-hpc/elsa/internal/pipeline"
	"github.com/elsa-hpc/elsa/internal/predict"
)

// monitorEnvelope is the on-disk form of a running monitor's resumable
// state: the organizer's full template set (including shapes learned
// online since training, so resumed stamping keeps the same event ids)
// and the session state — sampler cursor, open tick aggregates, signal
// windows, partially matched chains and the accumulated result. It is
// written next to, and versioned independently of, the model envelope.
//
//elsa:snapshot-envelope
type monitorEnvelope struct {
	Version int                    `json:"version"`
	Start   time.Time              `json:"start"`
	HELO    heloEnvelope           `json:"helo"`
	Session *pipeline.SessionState `json:"session"`
	// Ingest is the backend resume point at snapshot time, when the feed
	// is offset-addressable (file, segment dir). Omitted otherwise, which
	// also keeps version-1 snapshots from before this field readable.
	Ingest *IngestOffset `json:"ingest,omitempty"`

	// Refresh, Chains and Severity persist the incremental retraining
	// state once Monitor.Refresh has run: the session's engine state
	// references chains by key, so a resume must install the refreshed
	// chain set (not the originally trained one) before rebuilding the
	// engine. All omitted while the monitor has never refreshed, which
	// keeps pre-refresh snapshots byte-compatible.
	Refresh  *correlate.RefreshState `json:"refresh,omitempty"`
	Chains   []Chain                 `json:"chains,omitempty"`
	Severity map[int]Severity        `json:"severity,omitempty"`
}

// monitorFormatVersion increments on breaking changes to the envelope.
const monitorFormatVersion = 1

// Snapshot writes the monitor's resumable state as versioned JSON. Taken
// periodically (and on shutdown), it lets a crashed or restarted process
// continue mid-stream via Model.ResumeMonitor — without retraining,
// without re-emitting predictions already delivered and without losing
// the ones still pending in open ticks. Snapshotting a closed monitor is
// an error: its open ticks were already flushed, so a resume would
// double-emit their predictions.
//
//elsa:snapshotter encode
//elsa:requires open
func (mo *Monitor) Snapshot(w io.Writer) error {
	st, err := mo.session.State()
	if err != nil {
		return fmt.Errorf("elsa: snapshot monitor: %w", err)
	}
	env := monitorEnvelope{
		Version: monitorFormatVersion,
		Start:   st.Origin,
		HELO: heloEnvelope{
			Threshold: mo.model.organizer.Threshold(),
			Templates: mo.model.organizer.Templates(),
		},
		Session: st,
		Ingest:  mo.ingestOff,
	}
	if rst := mo.model.inner.RefreshState(); rst != nil {
		env.Refresh = rst
		env.Chains = mo.model.inner.Chains
		env.Severity = mo.model.inner.Severity
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(env); err != nil {
		return fmt.Errorf("elsa: snapshot monitor: %w", err)
	}
	return nil
}

// ResumeMonitor rebuilds a monitor mid-stream from a snapshot written by
// Monitor.Snapshot, using the default engine configuration. The model
// must be the one the snapshotted monitor ran over (typically reloaded
// via LoadModel): snapshot state references it by event id and chain
// key, and any mismatch is an error rather than a silently corrupted
// resume. The model's template organizer is replaced by the snapshot's —
// the superset of the trained templates plus everything the crashed
// monitor learned online.
//
// Feeding the resumed monitor the records after the snapshot point
// yields exactly the predictions the uninterrupted monitor would have
// emitted from there: none repeated, none missing.
func (m *Model) ResumeMonitor(r io.Reader) (*Monitor, error) {
	return m.ResumeMonitorWith(r, DefaultPredictConfig())
}

// ResumeMonitorWith is ResumeMonitor with an explicit engine
// configuration, which must match the one the snapshotted monitor ran
// with (the sampling step is validated; the rest is the caller's
// contract, as for LoadModel).
//
//elsa:snapshotter decode
func (m *Model) ResumeMonitorWith(r io.Reader, cfg PredictConfig) (*Monitor, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("elsa: resume monitor: %w", err)
	}
	if err := checkVersion("monitor snapshot", data, monitorFormatVersion); err != nil {
		return nil, err
	}
	var env monitorEnvelope
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("elsa: resume monitor: %w", err)
	}
	if env.Session == nil {
		return nil, fmt.Errorf("elsa: monitor snapshot missing session state")
	}
	org, err := restoreOrganizer(env.HELO)
	if err != nil {
		return nil, fmt.Errorf("elsa: resume monitor: %w", err)
	}
	m.organizer = org
	if env.Refresh != nil {
		// The snapshotted monitor had refreshed: install the refreshed
		// chain set and severity view before the engine resolves the
		// session's chain instances against the model.
		m.inner.Chains = env.Chains
		if env.Severity != nil {
			m.inner.Severity = env.Severity
		}
		m.inner.RestoreRefreshState(env.Refresh)
	}
	engine := predict.NewEngine(m.inner, m.profiles, cfg)
	p := pipeline.New(engine, m.organizer, m.pipelineConfig())
	session, err := p.ResumeSession(env.Session)
	if err != nil {
		return nil, fmt.Errorf("elsa: resume monitor: %w", err)
	}
	return &Monitor{model: m, pipe: p, session: session, ingestOff: env.Ingest}, nil
}
