package elsa

import (
	"encoding/json"
	"fmt"
	"io"
)

// PredictionWriter streams predictions to w as JSON lines, one write
// per prediction — nothing is buffered, so a monitor daemon or the soak
// harness can emit an unbounded stream without holding a run's worth of
// predictions in memory. Not safe for concurrent use.
type PredictionWriter struct {
	enc *json.Encoder
	n   int
}

// NewPredictionWriter wraps w. Wrap w in a bufio.Writer (and Flush it)
// only if per-prediction write syscalls are too expensive; the default
// is flush-per-prediction so a crash loses nothing already emitted.
func NewPredictionWriter(w io.Writer) *PredictionWriter {
	return &PredictionWriter{enc: json.NewEncoder(w)}
}

// Write emits one prediction.
func (pw *PredictionWriter) Write(p Prediction) error {
	if err := pw.enc.Encode(p); err != nil {
		return fmt.Errorf("elsa: prediction %d: %w", pw.n, err)
	}
	pw.n++
	return nil
}

// Count returns how many predictions have been written.
func (pw *PredictionWriter) Count() int { return pw.n }

// WritePredictions encodes predictions as JSON lines, the handoff format
// for downstream fault-tolerance tooling (schedulers, checkpoint
// managers). It is the slice convenience over PredictionWriter.
func WritePredictions(w io.Writer, preds []Prediction) error {
	pw := NewPredictionWriter(w)
	for _, p := range preds {
		if err := pw.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// ReadPredictions decodes JSON-lines predictions written by
// WritePredictions.
func ReadPredictions(r io.Reader) ([]Prediction, error) {
	dec := json.NewDecoder(r)
	var out []Prediction
	for {
		var p Prediction
		if err := dec.Decode(&p); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("elsa: prediction %d: %w", len(out), err)
		}
		out = append(out, p)
	}
}
