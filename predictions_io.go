package elsa

import (
	"encoding/json"
	"fmt"
	"io"
)

// WritePredictions encodes predictions as JSON lines, the handoff format
// for downstream fault-tolerance tooling (schedulers, checkpoint
// managers).
func WritePredictions(w io.Writer, preds []Prediction) error {
	enc := json.NewEncoder(w)
	for i, p := range preds {
		if err := enc.Encode(p); err != nil {
			return fmt.Errorf("elsa: prediction %d: %w", i, err)
		}
	}
	return nil
}

// ReadPredictions decodes JSON-lines predictions written by
// WritePredictions.
func ReadPredictions(r io.Reader) ([]Prediction, error) {
	dec := json.NewDecoder(r)
	var out []Prediction
	for {
		var p Prediction
		if err := dec.Decode(&p); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("elsa: prediction %d: %w", len(out), err)
		}
		out = append(out, p)
	}
}
